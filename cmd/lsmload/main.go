// Command lsmload replays generated live-streaming workloads against a
// running lsmserve over real TCP — the load-generation half of the
// closed loop generate → scenario-transform → replay → re-analyze.
//
// Replay mode generates a workload with the sharded GISMO generator,
// optionally reshapes it with scenario transforms, and drives the
// server on a virtual clock:
//
//	lsmload -addr 127.0.0.1:8555 -scale 3000 -hours 1 -seed 7 \
//	        -compression 600 -conns 256 \
//	        [-thin 0.9] [-churn 0.3:1.5] [-speedup 2] [-warp 0.8:86400] \
//	        [-flash at:dur:sessions]... [-meta meta.json]
//
// -meta records the replay's virtual-clock anchors and the full
// workload/scenario specification. Check mode then regenerates the
// offered workload from that record, parses the server's transfer log,
// maps it back onto the trace clock, and verifies the served workload
// matches the offered one exactly at session and transfer granularity:
//
//	lsmload -check meta.json -logs transfers.log
//
// It exits non-zero on a mismatch, which is what makes it a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/gismo"
	"repro/internal/loadgen"
	"repro/internal/prof"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/wmslog"
	"repro/internal/workload"
)

func main() {
	var (
		addr  = flag.String("addr", "", "lsmserve (or, with -frontend, lsmfleet) address to replay against (required unless -check)")
		check = flag.String("check", "", "meta JSON from a previous replay: validate the server log instead of replaying")
		logs  = flag.String("logs", "", "server transfer log (file or directory) for -check")
		meta  = flag.String("meta", "", "write replay metadata JSON here (enables a later -check)")

		scale   = flag.Float64("scale", 3000, "population/rate scale-down factor (1 = paper scale)")
		days    = flag.Int("days", 1, "trace horizon in days")
		hours   = flag.Int("hours", 0, "trace horizon in hours (overrides -days when > 0)")
		seed    = flag.Int64("seed", 1, "generator seed")
		shards  = flag.Int("shards", 0, "generator shards (0 = one per CPU)")
		rate    = flag.Float64("rate", 0, "override the model's base arrival rate in sessions/second (0 = model default)")
		noRamp  = flag.Bool("no-ramp", false, "disable the premiere ramp-up (recommended for sub-day horizons)")
		maxTx   = flag.Int("max-transfers", 0, "cap replayed transfers (0 = all)")
		scnSeed = flag.Int64("scenario-seed", 1, "seed for scenario transforms")

		thin    = flag.Float64("thin", 0, "keep each session with this probability (0 = off)")
		churn   = flag.String("churn", "", "viewer churn as frac:meanKept, e.g. 0.3:1.5")
		speedup = flag.Float64("speedup", 0, "compress trace time by this factor before replay (0 = off)")
		warp    = flag.String("warp", "", "diurnal reshaping as amplitude:period, e.g. 0.8:86400")
		flash   = multiFlag{}

		compression = flag.Float64("compression", 600, "trace seconds per wall second")
		conns       = flag.Int("conns", 256, "connection budget (pooled + overflow)")
		minWatch    = flag.Duration("min-watch", 40*time.Millisecond, "floor on per-transfer wall watch time")
		idleConn    = flag.Duration("idle-conn", 2*time.Second, "idle pooled connection retirement age")
		timeout     = flag.Int64("timeout", 0, "session timeout for -check (0 = widest-void auto pick)")
		frontend    = flag.Bool("frontend", false, "-addr is an lsmfleet redirector: resolve each (client, object) route through it and follow one redirect hop")
		maxFail     = flag.Int("max-failures", 0, "tolerate up to this many lost transfers (failover runs); lost events are recorded in -meta so -check can exclude exactly them")

		profiles prof.Profiles
	)
	flag.Var(&flash, "flash", "inject a flash crowd as at:dur:sessions (trace seconds); repeatable")
	profiles.RegisterFlags(flag.CommandLine)
	flag.Parse()

	// Resolve the mode before starting any profile, so a usage error
	// never exits with an unflushed (truncated) cpu/trace artifact.
	switch {
	case *check != "":
		if *logs == "" {
			fmt.Fprintln(os.Stderr, "lsmload: -check requires -logs")
			os.Exit(2)
		}
	case *addr != "":
	default:
		fmt.Fprintln(os.Stderr, "lsmload: either -addr (replay) or -check (validate) is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmload:", err)
		os.Exit(1)
	}

	sp := spec{
		Scale: *scale, Days: *days, Hours: *hours, Seed: *seed, Shards: *shards,
		Rate: *rate, NoRamp: *noRamp, MaxTransfers: *maxTx, ScenarioSeed: *scnSeed,
		Thin: *thin, Churn: *churn, SpeedUp: *speedup, Warp: *warp, Flash: flash,
	}

	var err error
	if *check != "" {
		err = runCheck(*check, *logs, *timeout, os.Stdout)
	} else {
		ro := replayOpts{
			Compression: *compression, Conns: *conns, MinWatch: *minWatch,
			IdleConn: *idleConn, Frontend: *frontend, MaxFailures: *maxFail,
		}
		err = runReplay(*addr, sp, ro, *meta, os.Stdout)
	}
	if perr := profiles.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmload:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated -flash values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// spec is the full workload + scenario parameterization. It is what
// -meta persists: check mode rebuilds the identical offered workload
// from it, which is only possible because generation and every
// transform are deterministic in their seeds.
type spec struct {
	Scale        float64  `json:"scale"`
	Days         int      `json:"days"`
	Hours        int      `json:"hours"`
	Seed         int64    `json:"seed"`
	Shards       int      `json:"shards"`
	Rate         float64  `json:"rate"`
	NoRamp       bool     `json:"no_ramp"`
	MaxTransfers int      `json:"max_transfers"`
	ScenarioSeed int64    `json:"scenario_seed"`
	Thin         float64  `json:"thin,omitempty"`
	Churn        string   `json:"churn,omitempty"`
	SpeedUp      float64  `json:"speedup,omitempty"`
	Warp         string   `json:"warp,omitempty"`
	Flash        []string `json:"flash,omitempty"`
}

// replayOpts bundles the wire-level replay knobs.
type replayOpts struct {
	Compression float64
	Conns       int
	MinWatch    time.Duration
	IdleConn    time.Duration
	// Frontend marks the target as a fleet redirector; MaxFailures is
	// how many lost transfers a (failover) replay may shed and still
	// succeed — the lost events land in the meta for exact validation.
	Frontend    bool
	MaxFailures int
}

// eventRef identifies one workload event — the granularity lost
// transfers are recorded and excluded at.
type eventRef struct {
	Session int `json:"session"`
	Seq     int `json:"seq"`
}

// metaFile anchors a finished replay for later validation.
type metaFile struct {
	Spec          spec       `json:"spec"`
	BeginUnixNano int64      `json:"begin_unix_nano"`
	Origin        int64      `json:"origin_trace_sec"`
	Compression   float64    `json:"compression"`
	Attempted     int        `json:"attempted"`
	Completed     int        `json:"completed"`
	Frontend      bool       `json:"frontend,omitempty"`
	Failed        []eventRef `json:"failed,omitempty"`
}

// model builds the generator model for the spec.
func (sp *spec) model() (gismo.Model, error) {
	m, err := gismo.Scaled(sp.Scale, max(sp.Days, 1))
	if err != nil {
		return m, err
	}
	if sp.Hours > 0 {
		m.Horizon = int64(sp.Hours) * 3600
	}
	if sp.Rate > 0 {
		m.BaseArrivalRate = sp.Rate
	}
	if sp.NoRamp {
		m.RampUpDays = 0
	}
	return m, m.Validate()
}

// transform builds the scenario chain for the spec.
func (sp *spec) transform(m gismo.Model) (scenario.Transform, error) {
	var ts []scenario.Transform
	if sp.Thin > 0 {
		t, err := scenario.Thin(sp.Thin, sp.ScenarioSeed)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	if sp.Churn != "" {
		frac, mean, err := parsePair(sp.Churn, "churn")
		if err != nil {
			return nil, err
		}
		t, err := scenario.Churn(frac, mean, sp.ScenarioSeed)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	if sp.SpeedUp > 0 {
		w, err := scenario.SpeedUp(sp.SpeedUp)
		if err != nil {
			return nil, err
		}
		t, err := scenario.TimeWarp(w)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	if sp.Warp != "" {
		amp, period, err := parsePair(sp.Warp, "warp")
		if err != nil {
			return nil, err
		}
		w, err := scenario.Diurnal(amp, int64(period))
		if err != nil {
			return nil, err
		}
		t, err := scenario.TimeWarp(w)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	for i, f := range sp.Flash {
		fc, err := parseFlash(f)
		if err != nil {
			return nil, err
		}
		fc.Clients = m.NumClients
		fc.Objects = m.NumObjects
		fc.Horizon = m.Horizon
		// Disjoint session-index bands per injection.
		fc.SessionBase = scenario.FlashSessionBase + i*(1<<24)
		t, err := fc.Inject(sp.ScenarioSeed)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return scenario.Chain(ts...), nil
}

// stream opens the transformed workload stream.
func (sp *spec) stream() (workload.Stream, gismo.Model, error) {
	m, err := sp.model()
	if err != nil {
		return nil, m, err
	}
	chain, err := sp.transform(m)
	if err != nil {
		return nil, m, err
	}
	shards := sp.Shards
	if shards == 0 {
		shards = gismo.DefaultShards()
	}
	ws, err := gismo.NewStream(m, sp.Seed, shards)
	if err != nil {
		return nil, m, err
	}
	return chain(ws), m, nil
}

// offeredEvents materializes the replayed event prefix for validation.
func (sp *spec) offeredEvents() ([]workload.Event, gismo.Model, error) {
	s, m, err := sp.stream()
	if err != nil {
		return nil, m, err
	}
	defer workload.CloseStream(s)
	var events []workload.Event
	for {
		if sp.MaxTransfers > 0 && len(events) >= sp.MaxTransfers {
			break
		}
		e, ok := s.Next()
		if !ok {
			break
		}
		events = append(events, e)
	}
	return events, m, nil
}

func runReplay(addr string, sp spec, ro replayOpts, metaPath string, out *os.File) error {
	stream, m, err := sp.stream()
	if err != nil {
		return err
	}
	defer workload.CloseStream(stream)

	cfg := loadgen.DefaultConfig()
	cfg.Compression = ro.Compression
	cfg.MaxConns = ro.Conns
	cfg.MinWatch = ro.MinWatch
	cfg.IdleConn = ro.IdleConn
	cfg.MaxTransfers = sp.MaxTransfers
	cfg.Frontend = ro.Frontend

	target := "server"
	if ro.Frontend {
		target = "fleet front-end"
	}
	fmt.Fprintf(out, "replaying %d-client model (horizon %ds) against %s %s at %gx compression\n",
		m.NumClients, m.Horizon, target, addr, ro.Compression)
	res, err := loadgen.Replay(addr, stream, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)

	if metaPath != "" {
		mf := metaFile{
			Spec:          sp,
			BeginUnixNano: res.Begin.UnixNano(),
			Origin:        res.Origin,
			Compression:   res.Compression,
			Attempted:     res.Attempted,
			Completed:     res.Completed,
			Frontend:      ro.Frontend,
		}
		for _, ev := range res.FailedEvents {
			mf.Failed = append(mf.Failed, eventRef{Session: ev.Session, Seq: ev.Seq})
		}
		data, err := json.MarshalIndent(&mf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(metaPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "replay metadata written to %s\n", metaPath)
	}
	if res.Failed > ro.MaxFailures {
		return fmt.Errorf("%d of %d transfers failed (max-failures %d)", res.Failed, res.Attempted, ro.MaxFailures)
	}
	return nil
}

func runCheck(metaPath, logPath string, timeout int64, out *os.File) error {
	data, err := os.ReadFile(metaPath)
	if err != nil {
		return err
	}
	var mf metaFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return fmt.Errorf("parse meta: %w", err)
	}

	events, m, err := mf.Spec.offeredEvents()
	if err != nil {
		return err
	}
	if len(events) != mf.Attempted {
		return fmt.Errorf("regenerated %d events but the replay attempted %d — meta/spec drift", len(events), mf.Attempted)
	}
	// A failover replay records the transfers it lost; the served log
	// cannot contain them, so the offered side excludes exactly those.
	if len(mf.Failed) > 0 {
		lost := make(map[eventRef]bool, len(mf.Failed))
		for _, ref := range mf.Failed {
			lost[ref] = true
		}
		kept := events[:0]
		for _, ev := range events {
			if !lost[eventRef{Session: ev.Session, Seq: ev.Seq}] {
				kept = append(kept, ev)
			}
		}
		if len(events)-len(kept) != len(mf.Failed) {
			return fmt.Errorf("meta records %d lost transfers but only %d matched regenerated events", len(mf.Failed), len(events)-len(kept))
		}
		events = kept
		fmt.Fprintf(out, "excluding %d transfers lost during the replay\n", len(mf.Failed))
	}
	offered, err := loadgen.OfferedTrace(events, m.Horizon)
	if err != nil {
		return err
	}

	paths := []string{logPath}
	if fi, err := os.Stat(logPath); err == nil && fi.IsDir() {
		paths, err = wmslog.FindLogs(logPath)
		if err != nil {
			return err
		}
	}
	entries, st, err := wmslog.ReadFiles(paths, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "parsed %d served entries (%d binary-framed, %d malformed skipped)\n", st.Entries, st.Binary, st.Malformed)

	// A node that dies between committing a log entry and the client
	// reading END makes the raw log disagree with the replay's
	// accounting (a recorded-lost event that was actually logged, or a
	// retry double-serving one event). Reconcile by event identity and
	// say so — the exactness claim below is over the reconciled set.
	lostEvents := make([]workload.Event, 0, len(mf.Failed))
	for _, ref := range mf.Failed {
		lostEvents = append(lostEvents, workload.Event{Session: ref.Session, Seq: ref.Seq})
	}
	entries, droppedLost, droppedDup := loadgen.ReconcileServed(entries, lostEvents)
	if droppedLost > 0 || droppedDup > 0 {
		fmt.Fprintf(out, "reconciled served log: dropped %d entries for recorded-lost events, %d duplicate serves\n",
			droppedLost, droppedDup)
	}

	begin := time.Unix(0, mf.BeginUnixNano)
	decompressed, err := loadgen.DecompressEntries(entries, begin, mf.Origin, mf.Compression, wmslog.TraceEpoch)
	if err != nil {
		return err
	}
	served, err := trace.FromEntries(decompressed, wmslog.TraceEpoch, m.Horizon)
	if err != nil {
		return err
	}

	if timeout == 0 {
		slack := int64(3 * mf.Compression)
		var ok bool
		timeout, ok = loadgen.SafeTimeout(offered, slack)
		if !ok {
			return fmt.Errorf("no session timeout is %d trace-seconds clear of every silent gap; lower -compression or pass -timeout", slack)
		}
		fmt.Fprintf(out, "auto-picked session timeout %d s (quantization slack %d s)\n", timeout, slack)
	}

	report, err := analyze.CompareTraces(offered, served, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, report)
	if !report.Match() {
		return fmt.Errorf("served workload does not match offered workload")
	}
	return nil
}

// parsePair splits "a:b" into two floats.
func parsePair(s, what string) (float64, float64, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-%s wants a:b, got %q", what, s)
	}
	x, err := strconv.ParseFloat(a, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-%s: %v", what, err)
	}
	y, err := strconv.ParseFloat(b, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-%s: %v", what, err)
	}
	return x, y, nil
}

// parseFlash parses "at:dur:sessions".
func parseFlash(s string) (scenario.FlashCrowd, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return scenario.FlashCrowd{}, fmt.Errorf("-flash wants at:dur:sessions, got %q", s)
	}
	vals := make([]int64, 3)
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return scenario.FlashCrowd{}, fmt.Errorf("-flash %q: %v", s, err)
		}
		vals[i] = v
	}
	return scenario.FlashCrowd{At: vals[0], Duration: vals[1], Sessions: int(vals[2])}, nil
}
