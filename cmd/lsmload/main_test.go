package main

import (
	"encoding/json"
	"testing"
)

func TestParsePair(t *testing.T) {
	a, b, err := parsePair("0.3:1.5", "churn")
	if err != nil || a != 0.3 || b != 1.5 {
		t.Fatalf("got %v %v %v", a, b, err)
	}
	for _, bad := range []string{"", "0.3", "x:1", "1:y"} {
		if _, _, err := parsePair(bad, "churn"); err == nil {
			t.Errorf("parsePair(%q) accepted", bad)
		}
	}
}

func TestParseFlash(t *testing.T) {
	fc, err := parseFlash("300:600:100")
	if err != nil {
		t.Fatal(err)
	}
	if fc.At != 300 || fc.Duration != 600 || fc.Sessions != 100 {
		t.Fatalf("parsed %+v", fc)
	}
	for _, bad := range []string{"", "1:2", "1:2:3:4", "a:2:3"} {
		if _, err := parseFlash(bad); err == nil {
			t.Errorf("parseFlash(%q) accepted", bad)
		}
	}
}

// TestSpecOfferedEventsDeterministicAndCapped: the -check contract
// rests on the spec regenerating the identical event prefix.
func TestSpecOfferedEventsDeterministicAndCapped(t *testing.T) {
	sp := spec{
		Scale: 6000, Days: 1, Hours: 1, Seed: 5, Shards: 2,
		Rate: 0.05, NoRamp: true, ScenarioSeed: 3,
		Thin: 0.9, Flash: []string{"100:400:20"},
	}
	a, m, err := sp.offeredEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no events generated")
	}
	if m.Horizon != 3600 {
		t.Fatalf("hours override ignored: horizon %d", m.Horizon)
	}
	b, _, err := sp.offeredEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("regeneration drift: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}

	// Shard count must not change the offered sequence.
	sp2 := sp
	sp2.Shards = 5
	c, _, err := sp2.offeredEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(c) {
		t.Fatalf("shard count changed the workload: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("shard count changed event %d", i)
		}
	}

	capped := sp
	capped.MaxTransfers = 7
	d, _, err := capped.offeredEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 7 {
		t.Fatalf("cap ignored: %d events", len(d))
	}
	for i := range d {
		if d[i] != a[i] {
			t.Fatalf("capped prefix diverges at %d", i)
		}
	}
}

// TestSpecSurvivesMetaRoundTrip: what -meta writes, -check must read
// back into the same spec.
func TestSpecSurvivesMetaRoundTrip(t *testing.T) {
	mf := metaFile{
		Spec: spec{
			Scale: 692, Days: 1, Hours: 2, Seed: 11, Shards: 4,
			Rate: 0.05, NoRamp: true, MaxTransfers: 100, ScenarioSeed: 9,
			Thin: 0.8, Churn: "0.3:1.5", SpeedUp: 2, Warp: "0.5:86400",
			Flash: []string{"600:900:2000", "1800:300:50"},
		},
		BeginUnixNano: 123456789,
		Origin:        42,
		Compression:   600,
		Attempted:     99,
		Completed:     99,
	}
	data, err := json.Marshal(&mf)
	if err != nil {
		t.Fatal(err)
	}
	var back metaFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.Scale != mf.Spec.Scale || back.Spec.Seed != mf.Spec.Seed ||
		back.Spec.Thin != mf.Spec.Thin || back.Spec.Churn != mf.Spec.Churn ||
		len(back.Spec.Flash) != 2 || back.Origin != 42 || back.Compression != 600 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

// TestSpecTransformValidation: bad scenario specs surface as errors,
// not silent no-ops.
func TestSpecTransformValidation(t *testing.T) {
	bad := []spec{
		{Scale: 6000, Days: 1, Thin: 1.5},
		{Scale: 6000, Days: 1, Churn: "nonsense"},
		{Scale: 6000, Days: 1, Warp: "2:-1"},
		{Scale: 6000, Days: 1, Flash: []string{"1:2"}},
	}
	for i, sp := range bad {
		m, err := sp.model()
		if err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		if _, err := sp.transform(m); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
