package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gismo"
	"repro/internal/wmslog"
)

func TestRunGeneratesLogsAndModel(t *testing.T) {
	dir := t.TempDir()
	logDir := filepath.Join(dir, "logs")
	modelPath := filepath.Join(dir, "model.json")

	o := options{out: logDir, scale: 500, days: 2, seed: 7, savePath: modelPath}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(logDir, "wms-*.log"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no logs written: %v", err)
	}
	entries, st, err := wmslog.ReadFiles(paths, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 || len(entries) == 0 {
		t.Fatal("empty logs")
	}

	data, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	var m gismo.Model
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("written model invalid: %v", err)
	}
	if m.Horizon != 2*86400 {
		t.Errorf("horizon = %d", m.Horizon)
	}

	// The saved spec loads back through the strict path and re-saves
	// byte-identically: the round trip the e2e twin loop depends on.
	loaded, err := gismo.LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	resaved := filepath.Join(dir, "model2.json")
	if err := loaded.Save(resaved); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("load -> save is not byte-identical to the original spec")
	}
}

func TestLoadModelRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	m, err := gismo.Scaled(800, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.json")
	if err := m.Save(good); err != nil {
		t.Fatal(err)
	}
	if _, err := gismo.LoadModel(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"num_clients"`), []byte(`"num_cleints"`), 1)
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gismo.LoadModel(badPath); err == nil {
		t.Error("typoed field name: want error")
	}

	nested := bytes.Replace(data, []byte(`"alpha"`), []byte(`"alhpa"`), 1)
	nestedPath := filepath.Join(dir, "nested.json")
	if err := os.WriteFile(nestedPath, nested, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gismo.LoadModel(nestedPath); err == nil {
		t.Error("typoed nested field name: want error")
	}
}

func TestRunLoadsModelJSON(t *testing.T) {
	dir := t.TempDir()
	m, err := gismo.Scaled(800, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "in.json")
	if err := os.WriteFile(modelPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{out: filepath.Join(dir, "logs"), seed: 1, loadPath: modelPath}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	if err := run(options{out: dir, scale: 0.5, days: 2, seed: 1}); err == nil {
		t.Error("scale < 1: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{out: dir, scale: 100, days: 2, seed: 1, loadPath: bad}); err == nil {
		t.Error("bad model JSON: want error")
	}
	if err := run(options{out: dir, scale: 100, days: 2, seed: 1, loadPath: filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing model file: want error")
	}
	if err := run(options{out: dir, scale: 100, days: 2, seed: 1, stream: true, shards: -1}); err == nil {
		t.Error("negative shard count: want error")
	}
}

// logBytes reads every daily file under dir, keyed by base name.
func logBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wms-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// TestStreamingLogsByteIdentical is the CLI-level acceptance check:
// the streaming path (-stream -shards N -lanes K) must write
// byte-identical daily logs to the materializing path for the same
// seed, for any generator shard count and any serve lane count.
func TestStreamingLogsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	legacyDir := filepath.Join(dir, "legacy")
	if err := run(options{out: legacyDir, scale: 500, days: 2, seed: 11}); err != nil {
		t.Fatal(err)
	}
	legacy := logBytes(t, legacyDir)
	if len(legacy) == 0 {
		t.Fatal("no legacy logs")
	}

	for _, c := range []struct{ shards, lanes int }{{1, 1}, {3, 1}, {1, 4}, {3, 8}} {
		streamDir := filepath.Join(dir, "stream", fmt.Sprintf("s%dl%d", c.shards, c.lanes))
		if err := run(options{out: streamDir, scale: 500, days: 2, seed: 11, stream: true, shards: c.shards, lanes: c.lanes}); err != nil {
			t.Fatal(err)
		}
		streamed := logBytes(t, streamDir)
		if len(streamed) != len(legacy) {
			t.Fatalf("shards=%d lanes=%d: %d files vs %d", c.shards, c.lanes, len(streamed), len(legacy))
		}
		for name, want := range legacy {
			got, ok := streamed[name]
			if !ok {
				t.Fatalf("shards=%d lanes=%d: missing file %s", c.shards, c.lanes, name)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("shards=%d lanes=%d: %s differs from the materializing path", c.shards, c.lanes, name)
			}
		}
	}
}
