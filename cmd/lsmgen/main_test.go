package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gismo"
	"repro/internal/wmslog"
)

func TestRunGeneratesLogsAndModel(t *testing.T) {
	dir := t.TempDir()
	logDir := filepath.Join(dir, "logs")
	modelPath := filepath.Join(dir, "model.json")

	if err := run(logDir, 500, 2, 7, modelPath, ""); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(logDir, "wms-*.log"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no logs written: %v", err)
	}
	entries, st, err := wmslog.ReadFiles(paths, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 || len(entries) == 0 {
		t.Fatal("empty logs")
	}

	data, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	var m gismo.Model
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("written model invalid: %v", err)
	}
	if m.Horizon != 2*86400 {
		t.Errorf("horizon = %d", m.Horizon)
	}
}

func TestRunLoadsModelJSON(t *testing.T) {
	dir := t.TempDir()
	m, err := gismo.Scaled(800, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "in.json")
	if err := os.WriteFile(modelPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "logs"), 0, 0, 1, "", modelPath); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.5, 2, 1, "", ""); err == nil {
		t.Error("scale < 1: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, 100, 2, 1, "", bad); err == nil {
		t.Error("bad model JSON: want error")
	}
	if err := run(dir, 100, 2, 1, "", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing model file: want error")
	}
}
