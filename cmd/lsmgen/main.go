// Command lsmgen generates a synthetic live-streaming-media workload with
// the extended GISMO model of Veloso et al. (IMC 2002), serves it through
// the simulated Windows Media Server, and writes daily log files.
//
// Usage:
//
//	lsmgen -out logs/ [-scale 150] [-days 7] [-seed 1] [-model model.json]
//	       [-save-model model.json] [-log-format text|binary] [-stream]
//	       [-shards N] [-lanes N]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -log-format binary writes the daily files in the framed binary
// wmslog format (~5-10× faster to re-parse, auto-detected by every
// reader); text stays the canonical form all md5 contracts are pinned
// to, and `lsmlog convert` round-trips between the two losslessly.
//
// With -stream the pipeline runs in streaming mode: the sharded
// generator feeds the sharded simulator event by event and log entries
// go straight to the daily files, so memory stays O(active sessions)
// instead of O(total requests) — the mode for paper-scale (-scale 1)
// runs. -shards sets the generator shard count and -serve-lanes the
// serve worker count (0 = one per schedulable CPU each; -lanes is the
// deprecated alias). The emitted logs are byte-identical between the
// streaming and the materializing path for the same seed, at any shard
// or lane count.
//
// The profiling flags (internal/prof) capture the run as pprof/trace
// artifacts; `make profile` is the canonical profiling invocation.
//
// The generated logs can then be characterized with lsmchar, or closed
// into the calibration loop with lsmcal. -model loads a model spec
// (e.g. one fitted by `lsmcal -o`) instead of the -scale/-days
// parameterization; -save-model writes the effective model spec so the
// run can be reproduced or adjusted. The two compose: `-model a.json
// -save-model b.json` round-trips the spec byte-identically. (-load is
// the deprecated alias of -model from when -model meant the write
// path.)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/gismo"
	"repro/internal/prof"
	"repro/internal/simulate"
	"repro/internal/wmslog"
)

// options collects the CLI parameters.
type options struct {
	out        string
	scale      float64
	days       int
	seed       int64
	savePath   string
	loadPath   string
	loadAlias  string
	logFormat  string
	stream     bool
	shards     int
	lanes      int
	serveLanes int
}

func main() {
	var o options
	var profiles prof.Profiles
	flag.StringVar(&o.out, "out", "", "directory for daily log files (required)")
	flag.Float64Var(&o.scale, "scale", 150, "population/rate scale-down factor (1 = paper scale)")
	flag.IntVar(&o.days, "days", 7, "trace length in days")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.StringVar(&o.loadPath, "model", "", "model spec JSON to load instead of -scale/-days (e.g. from lsmcal -o)")
	flag.StringVar(&o.savePath, "save-model", "", "optional path to write the effective model spec JSON")
	flag.StringVar(&o.loadAlias, "load", "", "deprecated alias for -model")
	flag.StringVar(&o.logFormat, "log-format", "text", "daily log format: text (canonical) or binary (framed fast path)")
	flag.BoolVar(&o.stream, "stream", false, "streaming mode: O(active sessions) memory, logs written as served")
	flag.IntVar(&o.shards, "shards", 0, "generator shards in streaming mode (0 = one per CPU)")
	flag.IntVar(&o.serveLanes, "serve-lanes", 0, "serve worker lanes in streaming mode (0 = one per schedulable CPU)")
	flag.IntVar(&o.lanes, "lanes", 0, "deprecated alias for -serve-lanes")
	profiles.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if o.out == "" {
		fmt.Fprintln(os.Stderr, "lsmgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if o.loadAlias != "" {
		if o.loadPath != "" && o.loadPath != o.loadAlias {
			fmt.Fprintln(os.Stderr, "lsmgen: -load is a deprecated alias for -model; set only one")
			os.Exit(2)
		}
		o.loadPath = o.loadAlias
	}
	if o.logFormat != "text" && o.logFormat != "binary" {
		fmt.Fprintf(os.Stderr, "lsmgen: -log-format %q: want text or binary\n", o.logFormat)
		os.Exit(2)
	}
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmgen:", err)
		os.Exit(1)
	}
	err := run(o)
	if perr := profiles.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmgen:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	model, err := resolveModel(o)
	if err != nil {
		return err
	}
	if o.stream {
		err = runStreaming(o, model)
	} else {
		err = runMaterialized(o, model)
	}
	if err != nil {
		return err
	}
	if o.savePath != "" {
		if err := model.Save(o.savePath); err != nil {
			return err
		}
		fmt.Printf("model written to %s\n", o.savePath)
	}
	return nil
}

func resolveModel(o options) (gismo.Model, error) {
	if o.loadPath != "" {
		return gismo.LoadModel(o.loadPath)
	}
	m, err := gismo.Scaled(o.scale, o.days)
	if err != nil {
		return m, err
	}
	return m, m.Validate()
}

// runMaterialized is the classic path: generate everything, serve
// everything, then write the logs.
func runMaterialized(o options, model gismo.Model) error {
	rng := rand.New(rand.NewSource(o.seed))
	fmt.Printf("generating: %d clients, %d-day horizon, seed %d\n",
		model.NumClients, model.Horizon/86400, o.seed)
	w, err := gismo.Generate(model, rng)
	if err != nil {
		return err
	}
	fmt.Println(w)

	res, err := simulate.Run(w, simulate.DefaultConfig(), uint64(o.seed))
	if err != nil {
		return err
	}
	writeLogs := res.WriteLogs
	if o.logFormat == "binary" {
		writeLogs = res.WriteLogsBinary
	}
	files, err := writeLogs(o.out)
	if err != nil {
		return err
	}
	fmt.Printf("served %d transfers (peak concurrency %d, %d corrupt entries injected)\n",
		res.Trace.NumTransfers(), res.PeakConcurrency, res.Injected)
	fmt.Printf("wrote %d daily log files under %s\n", len(files), o.out)
	return nil
}

// runStreaming pipes the sharded generator straight into the sharded
// simulator and the simulator straight into the daily log writer: no
// workload, trace or entry slice is ever materialized, and both the
// session expansion and the server-model draws run across CPUs.
func runStreaming(o options, model gismo.Model) error {
	shards := o.shards
	if shards == 0 {
		shards = gismo.DefaultShards()
	}
	lanes := o.serveLanes
	if lanes == 0 {
		lanes = o.lanes // deprecated -lanes alias
	}
	if lanes == 0 {
		lanes = simulate.DefaultServeLanes()
	}
	rng := rand.New(rand.NewSource(o.seed))
	ws, err := gismo.NewStream(model, rng.Int63(), shards)
	if err != nil {
		return err
	}
	defer ws.Close()
	fmt.Printf("streaming: %d clients, %d-day horizon, seed %d, %d shards, %d serve lanes, GOMAXPROCS %d\n",
		model.NumClients, model.Horizon/86400, o.seed, shards, lanes, runtime.GOMAXPROCS(0))

	dw, err := wmslog.NewDailyWriter(o.out)
	if err != nil {
		return err
	}
	dw.Binary = o.logFormat == "binary"
	res, err := simulate.RunStreamSharded(ws, ws.Population(), model.Horizon, simulate.DefaultConfig(), uint64(o.seed), lanes, simulate.StreamSinks{
		Entry: dw.Write,
	})
	if err != nil {
		dw.Close()
		return err
	}
	if err := dw.Close(); err != nil {
		return err
	}
	fmt.Printf("served %d transfers from %d sessions (peak concurrency %d, %d corrupt entries injected)\n",
		res.Transfers, ws.Sessions(), res.PeakConcurrency, res.Injected)
	fmt.Printf("wrote %d daily log files under %s\n", len(dw.Files()), o.out)
	return nil
}
