// Command lsmgen generates a synthetic live-streaming-media workload with
// the extended GISMO model of Veloso et al. (IMC 2002), serves it through
// the simulated Windows Media Server, and writes daily log files.
//
// Usage:
//
//	lsmgen -out logs/ [-scale 150] [-days 7] [-seed 1] [-model model.json]
//
// The generated logs can then be characterized with lsmchar. With
// -model the full model parameterization is also written as JSON so the
// run can be reproduced or adjusted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gismo"
	"repro/internal/simulate"
)

func main() {
	var (
		out       = flag.String("out", "", "directory for daily log files (required)")
		scale     = flag.Float64("scale", 150, "population/rate scale-down factor (1 = paper scale)")
		days      = flag.Int("days", 7, "trace length in days")
		seed      = flag.Int64("seed", 1, "random seed")
		modelPath = flag.String("model", "", "optional path to write the model JSON")
		loadPath  = flag.String("load", "", "optional model JSON to load instead of -scale/-days")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "lsmgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *scale, *days, *seed, *modelPath, *loadPath); err != nil {
		fmt.Fprintln(os.Stderr, "lsmgen:", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, days int, seed int64, modelPath, loadPath string) error {
	var model gismo.Model
	if loadPath != "" {
		data, err := os.ReadFile(loadPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &model); err != nil {
			return fmt.Errorf("parse model: %w", err)
		}
	} else {
		m, err := gismo.Scaled(scale, days)
		if err != nil {
			return err
		}
		model = m
	}
	if err := model.Validate(); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("generating: %d clients, %d-day horizon, seed %d\n",
		model.NumClients, model.Horizon/86400, seed)
	w, err := gismo.Generate(model, rng)
	if err != nil {
		return err
	}
	fmt.Println(w)

	res, err := simulate.Run(w, simulate.DefaultConfig(), rng)
	if err != nil {
		return err
	}
	files, err := res.WriteLogs(out)
	if err != nil {
		return err
	}
	fmt.Printf("served %d transfers (peak concurrency %d, %d corrupt entries injected)\n",
		res.Trace.NumTransfers(), res.PeakConcurrency, res.Injected)
	fmt.Printf("wrote %d daily log files under %s\n", len(files), out)

	if modelPath != "" {
		data, err := json.MarshalIndent(model, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(modelPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("model written to %s\n", modelPath)
	}
	return nil
}
