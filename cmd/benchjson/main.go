// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record on stdout. `make bench` uses it to emit
// BENCH_streaming.json, the perf trajectory of the streaming pipeline:
//
//	go test -run '^$' -bench 'BenchmarkStreaming' -benchmem . | benchjson
//
// Each parsed line becomes {name, gomaxprocs, runs, ns_per_op,
// bytes_per_op, allocs_per_op, metrics{...}}; non-benchmark lines are
// ignored. A `-cpu 1,2,4,8` matrix keeps its variants distinct: the
// -N name suffix is parsed into the gomaxprocs field rather than
// discarded, and the report records the machine's core count
// (num_cpu) so a reader can judge what the multi-core rows mean. For
// parallel benchmarks named by -speedup (comma-separated
// prefix=sequentialBase pairs; by default the sharded serve, sharded
// generation, and fused end-to-end families against their sequential
// forms), each variant also gets metrics.speedup_vs_sequential — the
// pair's sequential baseline's ns/op at the same GOMAXPROCS divided
// by its own.
//
// With -compare the tool becomes the CI perf gate: fresh bench output
// on stdin is compared against a committed baseline JSON, and any
// benchmark variant whose ns/op, bytes/op or allocs/op regressed by
// more than -threshold (default 0.25 = 25%), or whose
// speedup_vs_sequential dropped by more than 15%, fails the run, with
// a failure line naming the metric:
//
//	go test -run '^$' -bench 'BenchmarkStreaming' -benchmem . \
//	    | benchjson -compare BENCH_streaming.json
//
// Multi-core results are only meaningful on multi-core hardware: when
// the machine has fewer than -min-cores cores (default 4), the gate
// skips GOMAXPROCS>1 variants and the speedup metric with a loud
// SKIP line per variant instead of judging parallel scaling a
// single-core box cannot exhibit.
//
// With -history the tool reads nothing from stdin and instead renders
// the perf trajectory of a committed baseline: every git revision of
// the named JSON becomes one column of a markdown trend table
// (oldest → newest, ns/op · allocs/op · speedup per benchmark), which
// CI publishes to the bench-gate step summary.
//
// Benchmarks present on only one side are reported but never fail the
// gate — adding or retiring a benchmark is not a regression. A
// zero-valued baseline metric (a genuinely alloc-free benchmark, or a
// legacy baseline recorded without -benchmem) gates on any growth:
// regressing from 0 allocs/op is precisely the zero-alloc property
// the gate exists to defend.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// speedupMetric is the derived metric name for parallel benchmarks:
// sequential-baseline ns/op divided by this variant's ns/op, at the
// same GOMAXPROCS.
const speedupMetric = "speedup_vs_sequential"

// speedupDropThreshold is the allowed fractional drop in
// speedup_vs_sequential before the gate fails: scaling wins are capped
// by core count and scheduler noise, so the gate is looser than a raw
// latency gate but still catches a parallel path quietly degrading to
// sequential speed.
const speedupDropThreshold = 0.15

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Gomaxprocs  int                `json:"gomaxprocs,omitempty"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// speedupSpec is one parsed -speedup pair: benchmarks whose name
// starts with prefix are measured against the benchmark named base.
type speedupSpec struct {
	prefix string
	base   string
}

// defaultSpeedup pairs every parallel benchmark family with its
// sequential baseline: sharded serve vs sequential serve, sharded
// generation vs single-shard generation, and the fused end-to-end run
// vs its single-shard form.
const defaultSpeedup = "BenchmarkStreamingServeSharded=BenchmarkStreamingServe," +
	"BenchmarkStreamingGenerateShards=BenchmarkStreamingGenerateSequential," +
	"BenchmarkRunStreamedShards=BenchmarkRunStreamedSequential"

// compareOpts parameterizes the gate.
type compareOpts struct {
	threshold float64       // allowed fractional regression per gated metric
	speedup   []speedupSpec // which benchmarks carry the speedup metric
	numCPU    int           // cores on this machine
	minCores  int           // below this, multi-core variants are skipped
}

func main() {
	var (
		baseline  = flag.String("compare", "", "baseline JSON to compare against; regressions beyond -threshold fail")
		threshold = flag.Float64("threshold", 0.25, "allowed fractional ns/op regression in -compare mode")
		speedup   = flag.String("speedup", defaultSpeedup,
			"comma-separated prefix=base pairs: annotate benchmarks matching prefix with speedup_vs_sequential against base (empty disables)")
		minCores    = flag.Int("min-cores", 4, "skip gating GOMAXPROCS>1 variants and speedup on machines with fewer cores")
		historyFile = flag.String("history", "", "render a markdown perf-trend table from the git history of this baseline JSON and exit")
	)
	flag.Parse()

	if *historyFile != "" {
		if err := history(*historyFile, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	specs, err := parseSpeedupSpecs(*speedup)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	report.NumCPU = runtime.NumCPU()
	annotateSpeedup(report, specs)

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		opts := compareOpts{threshold: *threshold, speedup: specs, numCPU: runtime.NumCPU(), minCores: *minCores}
		if opts.numCPU < opts.minCores {
			fmt.Fprintf(os.Stderr, "benchjson: WARNING: %d core(s) < -min-cores %d; multi-core variants and %s are not gated on this machine\n",
				opts.numCPU, opts.minCores, speedupMetric)
		}
		regressions, compared := compare(&base, report, opts, os.Stdout)
		if compared == 0 {
			// A gate that measured nothing must not pass: an empty
			// intersection means the bench run or the baseline broke.
			fmt.Fprintln(os.Stderr, "benchjson: no benchmark present in both baseline and fresh results")
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d metric regression(s) beyond %.0f%%\n",
				regressions, *threshold*100)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parseSpeedupSpecs(s string) ([]speedupSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []speedupSpec
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		prefix, base, ok := strings.Cut(pair, "=")
		if !ok || prefix == "" || base == "" {
			return nil, fmt.Errorf("bad -speedup pair %q: want prefix=baseBenchmark", pair)
		}
		specs = append(specs, speedupSpec{prefix: prefix, base: base})
	}
	return specs, nil
}

// variantKey distinguishes -cpu matrix rows: GOMAXPROCS>1 variants get
// the conventional -N suffix back, while single-proc rows keep the
// bare name so legacy baselines (recorded before gomaxprocs existed)
// still match.
func variantKey(name string, gomaxprocs int) string {
	if gomaxprocs > 1 {
		return name + "-" + strconv.Itoa(gomaxprocs)
	}
	return name
}

// annotateSpeedup attaches metrics.speedup_vs_sequential to every
// benchmark matching a spec prefix: the pair's base benchmark's best
// ns/op at the same GOMAXPROCS over this result's ns/op. Variants with
// no same-GOMAXPROCS baseline are left unannotated — comparing across
// different proc counts would flatter or slander the parallel path.
func annotateSpeedup(report *Report, specs []speedupSpec) {
	for _, spec := range specs {
		seq := make(map[int]float64)
		for _, r := range report.Benchmarks {
			if r.Name != spec.base || r.NsPerOp <= 0 {
				continue
			}
			if cur, ok := seq[r.Gomaxprocs]; !ok || r.NsPerOp < cur {
				seq[r.Gomaxprocs] = r.NsPerOp
			}
		}
		if len(seq) == 0 {
			continue
		}
		for i := range report.Benchmarks {
			r := &report.Benchmarks[i]
			if r.Name == spec.base || !strings.HasPrefix(r.Name, spec.prefix) || r.NsPerOp <= 0 {
				continue
			}
			base, ok := seq[r.Gomaxprocs]
			if !ok {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[speedupMetric] = base / r.NsPerOp
		}
	}
}

// gatedMetric is one of the per-benchmark metrics the gate checks.
type gatedMetric struct {
	unit string
	get  func(Result) float64
}

// gatedMetrics are gated independently: a run that holds ns/op steady
// while tripling its allocations is a regression the old ns/op-only
// gate waved through.
var gatedMetrics = []gatedMetric{
	{"ns/op", func(r Result) float64 { return r.NsPerOp }},
	{"B/op", func(r Result) float64 { return r.BytesPerOp }},
	{"allocs/op", func(r Result) float64 { return r.AllocsPerOp }},
}

// compare prints a delta table of fresh results against the baseline
// and returns how many metric regressions exceeded the threshold and
// how many benchmark variants were compared at all. Each gated metric
// is checked independently with its own failure line; benchmarks
// carrying speedup_vs_sequential additionally gate on that metric
// dropping more than speedupDropThreshold. Variants are keyed by
// (name, GOMAXPROCS), so a -cpu matrix gates each row separately.
// Missing and new benchmarks are informational only, and on a machine
// with fewer than minCores cores the multi-core rows and the speedup
// metric are SKIPped rather than judged. Repeated results for one
// variant (`-count N`) are reduced to their per-metric minimum first —
// best-of-N is the standard noise damper for gating on shared CI
// hardware, where co-tenancy inflates individual runs far more often
// than it deflates them — and to the maximum for speedup, where
// bigger is better.
func compare(base, fresh *Report, opts compareOpts, w io.Writer) (regressions, compared int) {
	baseBy := bestByName(base)
	freshBy := bestByName(fresh)
	gateMulti := opts.numCPU >= opts.minCores
	reported := make(map[string]bool)
	for _, r := range fresh.Benchmarks {
		key := variantKey(r.Name, r.Gomaxprocs)
		if reported[key] {
			continue
		}
		reported[key] = true
		f := freshBy[key]
		b, ok := baseBy[key]
		if !ok {
			fmt.Fprintf(w, "NEW   %-45s %14.0f ns/op\n", key, f.NsPerOp)
			continue
		}
		if !gateMulti && f.Gomaxprocs > 1 {
			fmt.Fprintf(w, "SKIP  %-45s (%d cores < %d: multi-core variant not gated)\n", key, opts.numCPU, opts.minCores)
			continue
		}
		compared++
		for _, m := range gatedMetrics {
			bv, fv := m.get(b), m.get(f)
			if bv == 0 {
				// A zero baseline (a genuinely alloc-free benchmark, or
				// a legacy baseline that never recorded the metric —
				// the JSON cannot distinguish them) still gates: any
				// growth from zero is a regression. This is what keeps
				// the 0 allocs/op benchmarks honest; a legacy ns-only
				// baseline fails once, loudly, and is fixed by
				// refreshing it with `make bench`.
				if fv > 0 {
					fmt.Fprintf(w, "%-5s %-45s %14.0f -> %14.0f %-9s (grew from zero baseline)\n",
						"REGRESSION", key, bv, fv, m.unit)
					regressions++
				}
				continue
			}
			delta := (fv - bv) / bv
			verdict := "ok"
			if delta > opts.threshold {
				verdict = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-5s %-45s %14.0f -> %14.0f %-9s (%+.1f%%)\n",
				verdict, key, bv, fv, m.unit, delta*100)
		}
		if bs, fs := b.Metrics[speedupMetric], f.Metrics[speedupMetric]; bs > 0 && fs > 0 {
			if !gateMulti {
				fmt.Fprintf(w, "SKIP  %-45s (%d cores < %d: %s not gated)\n", key, opts.numCPU, opts.minCores, speedupMetric)
				continue
			}
			drop := (bs - fs) / bs
			verdict := "ok"
			if drop > speedupDropThreshold {
				verdict = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-5s %-45s %14.2fx -> %13.2fx %-9s (%+.1f%%)\n",
				verdict, key, bs, fs, speedupMetric, (fs-bs)/bs*100)
		}
	}
	for _, b := range base.Benchmarks {
		key := variantKey(b.Name, b.Gomaxprocs)
		if !reported[key] {
			reported[key] = true
			fmt.Fprintf(w, "GONE  %-45s was %14.0f ns/op\n", key, b.NsPerOp)
		}
	}
	return regressions, compared
}

// bestByName reduces each benchmark variant's repeated results to
// per-metric minima (ns/op, B/op, allocs/op are each taken at their
// best run) and the speedup metric to its maximum.
func bestByName(r *Report) map[string]Result {
	best := make(map[string]Result, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		key := variantKey(b.Name, b.Gomaxprocs)
		cur, ok := best[key]
		if !ok {
			best[key] = b
			continue
		}
		if b.NsPerOp < cur.NsPerOp {
			cur.NsPerOp = b.NsPerOp
		}
		if b.BytesPerOp < cur.BytesPerOp {
			cur.BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp < cur.AllocsPerOp {
			cur.AllocsPerOp = b.AllocsPerOp
		}
		if s := b.Metrics[speedupMetric]; s > cur.Metrics[speedupMetric] {
			m := make(map[string]float64, len(cur.Metrics))
			for k, v := range cur.Metrics {
				m[k] = v
			}
			m[speedupMetric] = s
			cur.Metrics = m
		}
		best[key] = cur
	}
	return best
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	report := &Report{Benchmarks: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, r)
			}
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkX-8  12  95104318 ns/op  40 B/op  2 allocs/op  6520 events
//
// The -N suffix is the GOMAXPROCS the run used (a -cpu matrix emits
// one line per value); it is captured into the result rather than
// folded away, so variants stay distinct.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			name = name[:i]
			procs = n
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Gomaxprocs: procs, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
