// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record on stdout. `make bench` uses it to emit
// BENCH_streaming.json, the perf trajectory of the streaming pipeline:
//
//	go test -run '^$' -bench 'BenchmarkStreaming' -benchmem . | benchjson
//
// Each parsed line becomes {name, runs, ns_per_op, bytes_per_op,
// allocs_per_op, metrics{...}}; non-benchmark lines are ignored.
//
// With -compare the tool becomes the CI perf gate: fresh bench output
// on stdin is compared against a committed baseline JSON, and any
// benchmark whose ns/op, bytes/op or allocs/op regressed by more than
// -threshold (default 0.25 = 25%) fails the run, with a failure line
// naming the metric:
//
//	go test -run '^$' -bench 'BenchmarkStreaming' -benchmem . \
//	    | benchjson -compare BENCH_streaming.json
//
// Benchmarks present on only one side are reported but never fail the
// gate — adding or retiring a benchmark is not a regression. A
// zero-valued baseline metric (a genuinely alloc-free benchmark, or a
// legacy baseline recorded without -benchmem) gates on any growth:
// regressing from 0 allocs/op is precisely the zero-alloc property
// the gate exists to defend.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		baseline  = flag.String("compare", "", "baseline JSON to compare against; regressions beyond -threshold fail")
		threshold = flag.Float64("threshold", 0.25, "allowed fractional ns/op regression in -compare mode")
	)
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		regressions, compared := compare(&base, report, *threshold, os.Stdout)
		if compared == 0 {
			// A gate that measured nothing must not pass: an empty
			// intersection means the bench run or the baseline broke.
			fmt.Fprintln(os.Stderr, "benchjson: no benchmark present in both baseline and fresh results")
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d metric regression(s) beyond %.0f%%\n",
				regressions, *threshold*100)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gatedMetric is one of the per-benchmark metrics the gate checks.
type gatedMetric struct {
	unit string
	get  func(Result) float64
}

// gatedMetrics are gated independently: a run that holds ns/op steady
// while tripling its allocations is a regression the old ns/op-only
// gate waved through.
var gatedMetrics = []gatedMetric{
	{"ns/op", func(r Result) float64 { return r.NsPerOp }},
	{"B/op", func(r Result) float64 { return r.BytesPerOp }},
	{"allocs/op", func(r Result) float64 { return r.AllocsPerOp }},
}

// compare prints a delta table of fresh results against the baseline
// and returns how many metric regressions exceeded the threshold and
// how many benchmarks were compared at all. Each gated metric is
// checked independently with its own failure line. Missing and new
// benchmarks are informational only. Repeated results for one name
// (`-count N`) are reduced to their per-metric minimum first —
// best-of-N is the standard noise damper for gating on shared CI
// hardware, where co-tenancy inflates individual runs far more often
// than it deflates them.
func compare(base, fresh *Report, threshold float64, w io.Writer) (regressions, compared int) {
	baseBy := bestByName(base)
	freshBy := bestByName(fresh)
	reported := make(map[string]bool)
	for _, r := range fresh.Benchmarks {
		if reported[r.Name] {
			continue
		}
		reported[r.Name] = true
		f := freshBy[r.Name]
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Fprintf(w, "NEW   %-45s %14.0f ns/op\n", f.Name, f.NsPerOp)
			continue
		}
		compared++
		for _, m := range gatedMetrics {
			bv, fv := m.get(b), m.get(f)
			if bv == 0 {
				// A zero baseline (a genuinely alloc-free benchmark, or
				// a legacy baseline that never recorded the metric —
				// the JSON cannot distinguish them) still gates: any
				// growth from zero is a regression. This is what keeps
				// the 0 allocs/op benchmarks honest; a legacy ns-only
				// baseline fails once, loudly, and is fixed by
				// refreshing it with `make bench`.
				if fv > 0 {
					fmt.Fprintf(w, "%-5s %-45s %14.0f -> %14.0f %-9s (grew from zero baseline)\n",
						"REGRESSION", f.Name, bv, fv, m.unit)
					regressions++
				}
				continue
			}
			delta := (fv - bv) / bv
			verdict := "ok"
			if delta > threshold {
				verdict = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-5s %-45s %14.0f -> %14.0f %-9s (%+.1f%%)\n",
				verdict, f.Name, bv, fv, m.unit, delta*100)
		}
	}
	for _, b := range base.Benchmarks {
		if !reported[b.Name] {
			reported[b.Name] = true
			fmt.Fprintf(w, "GONE  %-45s was %14.0f ns/op\n", b.Name, b.NsPerOp)
		}
	}
	return regressions, compared
}

// bestByName reduces each benchmark's repeated results to per-metric
// minima (ns/op, B/op, allocs/op are each taken at their best run).
func bestByName(r *Report) map[string]Result {
	best := make(map[string]Result, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		cur, ok := best[b.Name]
		if !ok {
			best[b.Name] = b
			continue
		}
		if b.NsPerOp < cur.NsPerOp {
			cur.NsPerOp = b.NsPerOp
		}
		if b.BytesPerOp < cur.BytesPerOp {
			cur.BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp < cur.AllocsPerOp {
			cur.AllocsPerOp = b.AllocsPerOp
		}
		best[b.Name] = cur
	}
	return best
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	report := &Report{Benchmarks: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, r)
			}
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkX-8  12  95104318 ns/op  40 B/op  2 allocs/op  6520 events
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
