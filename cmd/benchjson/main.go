// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record on stdout. `make bench` uses it to emit
// BENCH_streaming.json, the perf trajectory of the streaming pipeline:
//
//	go test -run '^$' -bench 'BenchmarkStreaming' -benchmem . | benchjson
//
// Each parsed line becomes {name, runs, ns_per_op, bytes_per_op,
// allocs_per_op, metrics{...}}; non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	report := &Report{Benchmarks: []Result{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, r)
			}
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkX-8  12  95104318 ns/op  40 B/op  2 allocs/op  6520 events
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
