package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"sort"
	"strings"
)

// history renders the perf trajectory of a committed baseline JSON as
// a markdown trend table: one column per commit that touched the file
// (oldest → newest), one row per benchmark variant, each cell the
// variant's ns/op · allocs/op · speedup_vs_sequential at that commit.
// CI publishes this from the bench-gate job's step summary, so every
// run shows where the recorded numbers have been, not just where they
// are.
func history(file string, w io.Writer) error {
	out, err := exec.Command("git", "log", "--reverse", "--format=%H %h %cs", "--", file).Output()
	if err != nil {
		return fmt.Errorf("git log -- %s: %w", file, err)
	}
	type snapshot struct {
		short, date string
		best        map[string]Result
	}
	var snaps []snapshot
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.Fields(line)
		if len(parts) < 3 {
			continue
		}
		blob, err := exec.Command("git", "show", parts[0]+":"+file).Output()
		if err != nil {
			continue // commit deleted or renamed the file; nothing to chart
		}
		var rep Report
		if err := json.Unmarshal(blob, &rep); err != nil {
			continue // pre-JSON or corrupt snapshot; skip, don't fail the trend
		}
		snaps = append(snaps, snapshot{short: parts[1], date: parts[2], best: bestByName(&rep)})
	}
	if len(snaps) == 0 {
		return fmt.Errorf("no parseable baseline snapshots in git history for %s", file)
	}

	keys := make(map[string]bool)
	for _, s := range snaps {
		for k := range s.best {
			keys[k] = true
		}
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)

	fmt.Fprintf(w, "## Perf trajectory · %s · %d baseline(s), oldest → newest\n\n", file, len(snaps))
	fmt.Fprintf(w, "Cell format: `ns/op · allocs/op` (and `· speedup` where %s is recorded); `—` = not in that baseline.\n\n", speedupMetric)
	fmt.Fprint(w, "| benchmark |")
	for _, s := range snaps {
		fmt.Fprintf(w, " %s %s |", s.short, s.date)
	}
	fmt.Fprint(w, "\n|---|")
	for range snaps {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, k := range ordered {
		fmt.Fprintf(w, "| %s |", k)
		for _, s := range snaps {
			r, ok := s.best[k]
			if !ok {
				fmt.Fprint(w, " — |")
				continue
			}
			cell := fmt.Sprintf("%s · %.0f", fmtNs(r.NsPerOp), r.AllocsPerOp)
			if sp := r.Metrics[speedupMetric]; sp > 0 {
				cell += fmt.Sprintf(" · %.2fx", sp)
			}
			fmt.Fprintf(w, " %s |", cell)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// fmtNs renders a ns/op value at a human scale.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
