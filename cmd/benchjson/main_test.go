package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC
BenchmarkStreamingGenerateSequential-8   	      12	  95104318 ns/op	 7340032 B/op	   12345 allocs/op
BenchmarkStreamingGenerateShards8-8      	      33	  35104318 ns/op	 8340032 B/op	   22345 allocs/op	  19560 events
PASS
ok  	repro	4.189s
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || report.CPU != "AMD EPYC" {
		t.Errorf("env fields: %+v", report)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkStreamingGenerateSequential" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b0.Name)
	}
	if b0.Runs != 12 || b0.NsPerOp != 95104318 || b0.BytesPerOp != 7340032 || b0.AllocsPerOp != 12345 {
		t.Errorf("values: %+v", b0)
	}
	b1 := report.Benchmarks[1]
	if b1.Metrics["events"] != 19560 {
		t.Errorf("custom metric lost: %+v", b1)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader("hello\nBenchmarkBroken abc\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Errorf("garbage parsed as benchmarks: %+v", report.Benchmarks)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1100}, // +10%: within threshold
		{Name: "BenchmarkB", NsPerOp: 2600}, // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 10},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, 0.25, &out)
	if got != 1 || compared != 2 {
		t.Fatalf("regressions = %d compared = %d, want 1 and 2\n%s", got, compared, out.String())
	}
	report := out.String()
	for _, want := range []string{"REGRESSION", "BenchmarkB", "NEW", "BenchmarkNew", "GONE", "BenchmarkGone"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareImprovementAndExactPass(t *testing.T) {
	base := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1000}}}
	fresh := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 700}}}
	var out strings.Builder
	if got, _ := compare(base, fresh, 0.25, &out); got != 0 {
		t.Fatalf("improvement counted as regression:\n%s", out.String())
	}
	// Exactly at the threshold is not a regression (strictly beyond).
	fresh.Benchmarks[0].NsPerOp = 1250
	if got, _ := compare(base, fresh, 0.25, &out); got != 0 {
		t.Fatal("threshold boundary counted as regression")
	}
}

// TestCompareBestOfNAndEmptyIntersection: repeated -count runs reduce
// to their fastest before gating, and a gate that compared nothing is
// reported as such (the caller fails it).
func TestCompareBestOfNAndEmptyIntersection(t *testing.T) {
	base := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1000}}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1400}, // noisy run
		{Name: "BenchmarkA", NsPerOp: 1050}, // best run: within threshold
		{Name: "BenchmarkA", NsPerOp: 1300},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, 0.25, &out)
	if got != 0 || compared != 1 {
		t.Fatalf("best-of-N not applied: regressions=%d compared=%d\n%s", got, compared, out.String())
	}
	if !strings.Contains(out.String(), "1050") {
		t.Errorf("table should show the best run:\n%s", out.String())
	}

	disjoint := &Report{Benchmarks: []Result{{Name: "BenchmarkRenamed", NsPerOp: 10}}}
	if _, compared := compare(base, disjoint, 0.25, &out); compared != 0 {
		t.Fatalf("disjoint sets reported %d compared", compared)
	}
}
