package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC
BenchmarkStreamingGenerateSequential-8   	      12	  95104318 ns/op	 7340032 B/op	   12345 allocs/op
BenchmarkStreamingGenerateShards8-8      	      33	  35104318 ns/op	 8340032 B/op	   22345 allocs/op	  19560 events
PASS
ok  	repro	4.189s
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || report.CPU != "AMD EPYC" {
		t.Errorf("env fields: %+v", report)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkStreamingGenerateSequential" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b0.Name)
	}
	if b0.Runs != 12 || b0.NsPerOp != 95104318 || b0.BytesPerOp != 7340032 || b0.AllocsPerOp != 12345 {
		t.Errorf("values: %+v", b0)
	}
	b1 := report.Benchmarks[1]
	if b1.Metrics["events"] != 19560 {
		t.Errorf("custom metric lost: %+v", b1)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader("hello\nBenchmarkBroken abc\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Errorf("garbage parsed as benchmarks: %+v", report.Benchmarks)
	}
}
