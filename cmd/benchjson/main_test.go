package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC
BenchmarkStreamingGenerateSequential-8   	      12	  95104318 ns/op	 7340032 B/op	   12345 allocs/op
BenchmarkStreamingGenerateShards8-8      	      33	  35104318 ns/op	 8340032 B/op	   22345 allocs/op	  19560 events
PASS
ok  	repro	4.189s
`

// gateOpts is the default gate configuration for tests: a machine with
// enough cores that nothing is skipped.
var gateOpts = compareOpts{threshold: 0.25, numCPU: 8, minCores: 4}

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || report.CPU != "AMD EPYC" {
		t.Errorf("env fields: %+v", report)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkStreamingGenerateSequential" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be split off)", b0.Name)
	}
	if b0.Gomaxprocs != 8 {
		t.Errorf("gomaxprocs = %d, want 8 (the -N suffix must be captured)", b0.Gomaxprocs)
	}
	if b0.Runs != 12 || b0.NsPerOp != 95104318 || b0.BytesPerOp != 7340032 || b0.AllocsPerOp != 12345 {
		t.Errorf("values: %+v", b0)
	}
	b1 := report.Benchmarks[1]
	if b1.Metrics["events"] != 19560 {
		t.Errorf("custom metric lost: %+v", b1)
	}
}

// TestParseCPUMatrix: a -cpu 1,2,4 run emits one line per GOMAXPROCS;
// each must survive as its own variant rather than collapsing.
func TestParseCPUMatrix(t *testing.T) {
	matrix := `BenchmarkServe     	      10	 100 ns/op
BenchmarkServe-2   	      10	  60 ns/op
BenchmarkServe-4   	      10	  40 ns/op
`
	report, err := parse(bufio.NewScanner(strings.NewReader(matrix)))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d variants, want 3", len(report.Benchmarks))
	}
	for i, want := range []int{1, 2, 4} {
		if got := report.Benchmarks[i].Gomaxprocs; got != want {
			t.Errorf("variant %d gomaxprocs = %d, want %d", i, got, want)
		}
		if report.Benchmarks[i].Name != "BenchmarkServe" {
			t.Errorf("variant %d name = %q", i, report.Benchmarks[i].Name)
		}
	}
}

// TestAnnotateSpeedup: parallel variants get speedup_vs_sequential
// against the sequential base at the same GOMAXPROCS, and only there.
func TestAnnotateSpeedup(t *testing.T) {
	report := &Report{Benchmarks: []Result{
		{Name: "BenchmarkServe", Gomaxprocs: 1, NsPerOp: 1000},
		{Name: "BenchmarkServe", Gomaxprocs: 4, NsPerOp: 900},
		{Name: "BenchmarkServeSharded4", Gomaxprocs: 1, NsPerOp: 1100},
		{Name: "BenchmarkServeSharded4", Gomaxprocs: 4, NsPerOp: 300},
		{Name: "BenchmarkServeSharded4", Gomaxprocs: 16, NsPerOp: 200}, // no base at 16
		{Name: "BenchmarkUnrelated", Gomaxprocs: 4, NsPerOp: 50},
	}}
	annotateSpeedup(report, []speedupSpec{{prefix: "BenchmarkServeSharded", base: "BenchmarkServe"}})

	want := map[int]float64{1: 1000.0 / 1100, 4: 900.0 / 300}
	for _, r := range report.Benchmarks {
		switch {
		case r.Name == "BenchmarkServeSharded4" && r.Gomaxprocs == 16:
			if _, ok := r.Metrics[speedupMetric]; ok {
				t.Error("speedup computed without a same-GOMAXPROCS baseline")
			}
		case r.Name == "BenchmarkServeSharded4":
			if got := r.Metrics[speedupMetric]; got != want[r.Gomaxprocs] {
				t.Errorf("gomaxprocs=%d speedup = %v, want %v", r.Gomaxprocs, got, want[r.Gomaxprocs])
			}
		default:
			if _, ok := r.Metrics[speedupMetric]; ok {
				t.Errorf("%s wrongly annotated", r.Name)
			}
		}
	}
}

// TestParseSpeedupSpecs: the flag is a comma-separated list of
// prefix=base pairs; a malformed pair fails parsing loudly.
func TestParseSpeedupSpecs(t *testing.T) {
	specs, err := parseSpeedupSpecs("BenchA=BenchSeqA, BenchB=BenchSeqB")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].prefix != "BenchA" || specs[1].base != "BenchSeqB" {
		t.Errorf("parsed %+v", specs)
	}
	if s, err := parseSpeedupSpecs(""); err != nil || s != nil {
		t.Errorf("empty flag: %v %v", s, err)
	}
	if _, err := parseSpeedupSpecs("BenchA=Base,oops"); err == nil {
		t.Error("malformed pair accepted")
	}
}

// TestAnnotateSpeedupMultiPair: each pair annotates its own family
// against its own base; families never cross.
func TestAnnotateSpeedupMultiPair(t *testing.T) {
	report := &Report{Benchmarks: []Result{
		{Name: "BenchmarkServe", Gomaxprocs: 4, NsPerOp: 800},
		{Name: "BenchmarkServeSharded4", Gomaxprocs: 4, NsPerOp: 200},
		{Name: "BenchmarkGenSequential", Gomaxprocs: 4, NsPerOp: 600},
		{Name: "BenchmarkGenShards4", Gomaxprocs: 4, NsPerOp: 300},
	}}
	annotateSpeedup(report, []speedupSpec{
		{prefix: "BenchmarkServeSharded", base: "BenchmarkServe"},
		{prefix: "BenchmarkGenShards", base: "BenchmarkGenSequential"},
	})
	got := map[string]float64{}
	for _, r := range report.Benchmarks {
		if s, ok := r.Metrics[speedupMetric]; ok {
			got[r.Name] = s
		}
	}
	want := map[string]float64{"BenchmarkServeSharded4": 4.0, "BenchmarkGenShards4": 2.0}
	if len(got) != len(want) || got["BenchmarkServeSharded4"] != 4.0 || got["BenchmarkGenShards4"] != 2.0 {
		t.Errorf("speedups = %v, want %v", got, want)
	}
}

// TestCompareGatesSpeedup: a speedup_vs_sequential drop beyond 15%
// fails the gate even when raw ns/op stays inside its own threshold.
func TestCompareGatesSpeedup(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkSharded", Gomaxprocs: 4, NsPerOp: 1000,
			Metrics: map[string]float64{speedupMetric: 2.0}},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkSharded", Gomaxprocs: 4, NsPerOp: 1150, // +15% ns: inside 25%
			Metrics: map[string]float64{speedupMetric: 1.5}}, // -25% speedup: regression
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, gateOpts, &out)
	if got != 1 || compared != 1 {
		t.Fatalf("regressions = %d compared = %d, want 1 and 1\n%s", got, compared, out.String())
	}
	if !strings.Contains(out.String(), speedupMetric) {
		t.Errorf("failure line does not name the speedup metric:\n%s", out.String())
	}

	// A drop within 15% passes.
	fresh.Benchmarks[0].Metrics[speedupMetric] = 1.8
	out.Reset()
	if got, _ := compare(base, fresh, gateOpts, &out); got != 0 {
		t.Fatalf("10%% speedup wobble gated:\n%s", out.String())
	}
}

// TestCompareVariantKeys: -cpu matrix rows gate independently — a
// regression at GOMAXPROCS=4 must be caught even when the =1 row
// improved.
func TestCompareVariantKeys(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkServe", Gomaxprocs: 1, NsPerOp: 1000},
		{Name: "BenchmarkServe", Gomaxprocs: 4, NsPerOp: 400},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkServe", Gomaxprocs: 1, NsPerOp: 900},
		{Name: "BenchmarkServe", Gomaxprocs: 4, NsPerOp: 800},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, gateOpts, &out)
	if got != 1 || compared != 2 {
		t.Fatalf("regressions = %d compared = %d, want 1 and 2\n%s", got, compared, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkServe-4") {
		t.Errorf("failure not attributed to the -4 variant:\n%s", out.String())
	}
}

// TestCompareSkipsMultiCoreOnSmallMachines: below min-cores, multi-core
// variants and the speedup metric are SKIPped, never failed — but the
// single-proc rows still gate.
func TestCompareSkipsMultiCoreOnSmallMachines(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkServe", Gomaxprocs: 1, NsPerOp: 1000},
		{Name: "BenchmarkSharded", Gomaxprocs: 4, NsPerOp: 400,
			Metrics: map[string]float64{speedupMetric: 2.5}},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkServe", Gomaxprocs: 1, NsPerOp: 1000},
		{Name: "BenchmarkSharded", Gomaxprocs: 4, NsPerOp: 4000, // 10×: meaningless on 1 core
			Metrics: map[string]float64{speedupMetric: 0.3}},
	}}
	small := compareOpts{threshold: 0.25, numCPU: 1, minCores: 4}
	var out strings.Builder
	got, compared := compare(base, fresh, small, &out)
	if got != 0 || compared != 1 {
		t.Fatalf("regressions = %d compared = %d, want 0 and 1\n%s", got, compared, out.String())
	}
	if !strings.Contains(out.String(), "SKIP") {
		t.Errorf("skipped variant not visibly reported:\n%s", out.String())
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader("hello\nBenchmarkBroken abc\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Errorf("garbage parsed as benchmarks: %+v", report.Benchmarks)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1100}, // +10%: within threshold
		{Name: "BenchmarkB", NsPerOp: 2600}, // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 10},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, gateOpts, &out)
	if got != 1 || compared != 2 {
		t.Fatalf("regressions = %d compared = %d, want 1 and 2\n%s", got, compared, out.String())
	}
	report := out.String()
	for _, want := range []string{"REGRESSION", "BenchmarkB", "NEW", "BenchmarkNew", "GONE", "BenchmarkGone"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareImprovementAndExactPass(t *testing.T) {
	base := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1000}}}
	fresh := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 700}}}
	var out strings.Builder
	if got, _ := compare(base, fresh, gateOpts, &out); got != 0 {
		t.Fatalf("improvement counted as regression:\n%s", out.String())
	}
	// Exactly at the threshold is not a regression (strictly beyond).
	fresh.Benchmarks[0].NsPerOp = 1250
	if got, _ := compare(base, fresh, gateOpts, &out); got != 0 {
		t.Fatal("threshold boundary counted as regression")
	}
}

// TestCompareGatesAllocsAndBytes: allocs/op and bytes/op regressions
// fail the gate independently of ns/op, each with its own metric-named
// line; a zero-valued baseline metric gates on any growth at all.
func TestCompareGatesAllocsAndBytes(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 100},
		{Name: "BenchmarkZeroAlloc", NsPerOp: 500}, // allocs 0 → omitted from JSON
	}}
	fresh := &Report{Benchmarks: []Result{
		// ns/op fine, allocs +100%, bytes +50%: two regressions.
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 3 << 19, AllocsPerOp: 200},
		// Growing from a zero baseline is a regression for each grown
		// metric — the zero-alloc property must not rot silently.
		{Name: "BenchmarkZeroAlloc", NsPerOp: 510, BytesPerOp: 96, AllocsPerOp: 3},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, gateOpts, &out)
	if got != 4 || compared != 2 {
		t.Fatalf("regressions = %d compared = %d, want 4 and 2\n%s", got, compared, out.String())
	}
	report := out.String()
	for _, want := range []string{"allocs/op", "B/op"} {
		if !strings.Contains(report, "REGRESSION BenchmarkA") ||
			!strings.Contains(report, want) {
			t.Errorf("report missing per-metric failure for %q:\n%s", want, report)
		}
	}
	if !strings.Contains(report, "REGRESSION BenchmarkZeroAlloc") ||
		!strings.Contains(report, "grew from zero baseline") {
		t.Errorf("zero-baseline growth not gated:\n%s", report)
	}

	// A fresh run that stays at zero passes.
	steady := &Report{Benchmarks: []Result{{Name: "BenchmarkZeroAlloc", NsPerOp: 505}}}
	out.Reset()
	if got, _ := compare(base, steady, gateOpts, &out); got != 0 {
		t.Fatalf("steady zero-alloc benchmark flagged:\n%s", out.String())
	}
}

// TestCompareBestOfNPerMetric: the -count N reduction takes each
// metric's own minimum, so one noisy run cannot poison another
// metric's best.
func TestCompareBestOfNPerMetric(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1050, AllocsPerOp: 500}, // fast but alloc-noisy
		{Name: "BenchmarkA", NsPerOp: 1400, AllocsPerOp: 100}, // slow but alloc-clean
	}}
	var out strings.Builder
	if got, _ := compare(base, fresh, gateOpts, &out); got != 0 {
		t.Fatalf("per-metric best-of-N not applied:\n%s", out.String())
	}
}

// TestCompareBestOfNAndEmptyIntersection: repeated -count runs reduce
// to their fastest before gating, and a gate that compared nothing is
// reported as such (the caller fails it).
func TestCompareBestOfNAndEmptyIntersection(t *testing.T) {
	base := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1000}}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1400}, // noisy run
		{Name: "BenchmarkA", NsPerOp: 1050}, // best run: within threshold
		{Name: "BenchmarkA", NsPerOp: 1300},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, gateOpts, &out)
	if got != 0 || compared != 1 {
		t.Fatalf("best-of-N not applied: regressions=%d compared=%d\n%s", got, compared, out.String())
	}
	if !strings.Contains(out.String(), "1050") {
		t.Errorf("table should show the best run:\n%s", out.String())
	}

	disjoint := &Report{Benchmarks: []Result{{Name: "BenchmarkRenamed", NsPerOp: 10}}}
	if _, compared := compare(base, disjoint, gateOpts, &out); compared != 0 {
		t.Fatalf("disjoint sets reported %d compared", compared)
	}
}
