package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC
BenchmarkStreamingGenerateSequential-8   	      12	  95104318 ns/op	 7340032 B/op	   12345 allocs/op
BenchmarkStreamingGenerateShards8-8      	      33	  35104318 ns/op	 8340032 B/op	   22345 allocs/op	  19560 events
PASS
ok  	repro	4.189s
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || report.CPU != "AMD EPYC" {
		t.Errorf("env fields: %+v", report)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkStreamingGenerateSequential" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b0.Name)
	}
	if b0.Runs != 12 || b0.NsPerOp != 95104318 || b0.BytesPerOp != 7340032 || b0.AllocsPerOp != 12345 {
		t.Errorf("values: %+v", b0)
	}
	b1 := report.Benchmarks[1]
	if b1.Metrics["events"] != 19560 {
		t.Errorf("custom metric lost: %+v", b1)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader("hello\nBenchmarkBroken abc\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Errorf("garbage parsed as benchmarks: %+v", report.Benchmarks)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1100}, // +10%: within threshold
		{Name: "BenchmarkB", NsPerOp: 2600}, // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 10},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, 0.25, &out)
	if got != 1 || compared != 2 {
		t.Fatalf("regressions = %d compared = %d, want 1 and 2\n%s", got, compared, out.String())
	}
	report := out.String()
	for _, want := range []string{"REGRESSION", "BenchmarkB", "NEW", "BenchmarkNew", "GONE", "BenchmarkGone"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareImprovementAndExactPass(t *testing.T) {
	base := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1000}}}
	fresh := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 700}}}
	var out strings.Builder
	if got, _ := compare(base, fresh, 0.25, &out); got != 0 {
		t.Fatalf("improvement counted as regression:\n%s", out.String())
	}
	// Exactly at the threshold is not a regression (strictly beyond).
	fresh.Benchmarks[0].NsPerOp = 1250
	if got, _ := compare(base, fresh, 0.25, &out); got != 0 {
		t.Fatal("threshold boundary counted as regression")
	}
}

// TestCompareGatesAllocsAndBytes: allocs/op and bytes/op regressions
// fail the gate independently of ns/op, each with its own metric-named
// line; a zero-valued baseline metric gates on any growth at all.
func TestCompareGatesAllocsAndBytes(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 100},
		{Name: "BenchmarkZeroAlloc", NsPerOp: 500}, // allocs 0 → omitted from JSON
	}}
	fresh := &Report{Benchmarks: []Result{
		// ns/op fine, allocs +100%, bytes +50%: two regressions.
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 3 << 19, AllocsPerOp: 200},
		// Growing from a zero baseline is a regression for each grown
		// metric — the zero-alloc property must not rot silently.
		{Name: "BenchmarkZeroAlloc", NsPerOp: 510, BytesPerOp: 96, AllocsPerOp: 3},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, 0.25, &out)
	if got != 4 || compared != 2 {
		t.Fatalf("regressions = %d compared = %d, want 4 and 2\n%s", got, compared, out.String())
	}
	report := out.String()
	for _, want := range []string{"allocs/op", "B/op"} {
		if !strings.Contains(report, "REGRESSION BenchmarkA") ||
			!strings.Contains(report, want) {
			t.Errorf("report missing per-metric failure for %q:\n%s", want, report)
		}
	}
	if !strings.Contains(report, "REGRESSION BenchmarkZeroAlloc") ||
		!strings.Contains(report, "grew from zero baseline") {
		t.Errorf("zero-baseline growth not gated:\n%s", report)
	}

	// A fresh run that stays at zero passes.
	steady := &Report{Benchmarks: []Result{{Name: "BenchmarkZeroAlloc", NsPerOp: 505}}}
	out.Reset()
	if got, _ := compare(base, steady, 0.25, &out); got != 0 {
		t.Fatalf("steady zero-alloc benchmark flagged:\n%s", out.String())
	}
}

// TestCompareBestOfNPerMetric: the -count N reduction takes each
// metric's own minimum, so one noisy run cannot poison another
// metric's best.
func TestCompareBestOfNPerMetric(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
	}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1050, AllocsPerOp: 500}, // fast but alloc-noisy
		{Name: "BenchmarkA", NsPerOp: 1400, AllocsPerOp: 100}, // slow but alloc-clean
	}}
	var out strings.Builder
	if got, _ := compare(base, fresh, 0.25, &out); got != 0 {
		t.Fatalf("per-metric best-of-N not applied:\n%s", out.String())
	}
}

// TestCompareBestOfNAndEmptyIntersection: repeated -count runs reduce
// to their fastest before gating, and a gate that compared nothing is
// reported as such (the caller fails it).
func TestCompareBestOfNAndEmptyIntersection(t *testing.T) {
	base := &Report{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1000}}}
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1400}, // noisy run
		{Name: "BenchmarkA", NsPerOp: 1050}, // best run: within threshold
		{Name: "BenchmarkA", NsPerOp: 1300},
	}}
	var out strings.Builder
	got, compared := compare(base, fresh, 0.25, &out)
	if got != 0 || compared != 1 {
		t.Fatalf("best-of-N not applied: regressions=%d compared=%d\n%s", got, compared, out.String())
	}
	if !strings.Contains(out.String(), "1050") {
		t.Errorf("table should show the best run:\n%s", out.String())
	}

	disjoint := &Report{Benchmarks: []Result{{Name: "BenchmarkRenamed", NsPerOp: 10}}}
	if _, compared := compare(base, disjoint, 0.25, &out); compared != 0 {
		t.Fatalf("disjoint sets reported %d compared", compared)
	}
}
