// Command lsmcal closes the digital-twin calibration loop of Veloso et
// al. (IMC 2002): characterize a directory of WMS-style logs, fit the
// Table 2 parameter set of the extended GISMO generator to the
// characterization, optionally regenerate a synthetic twin workload
// from the fitted model, and validate the twin against its source with
// per-layer two-sample KS tests.
//
// Usage:
//
//	lsmcal -logs logs/ [-days 7] [-timeout 1500] [-seed 1]
//	       [-o model.json] [-twin] [-strict]
//
// Both text and framed binary daily logs are read (the parser
// auto-detects the format per file). -o writes the fitted model spec
// JSON, which lsmgen loads directly via -model. -twin runs the full
// loop — generate from the fitted spec, serve, re-characterize,
// validate — and prints the source-versus-twin report; with -strict the
// exit code is nonzero when any KS test rejects.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/calibrate"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wmslog"
)

func main() {
	var (
		logs    = flag.String("logs", "", "directory of wms-*.log files, text or binary (required)")
		days    = flag.Int("days", 7, "trace horizon in days")
		timeout = flag.Int64("timeout", 1500, "session timeout T_o in seconds")
		seed    = flag.Int64("seed", 1, "seed for the twin regeneration and the Poisson replica")
		out     = flag.String("o", "", "path to write the fitted model spec JSON")
		twin    = flag.Bool("twin", false, "regenerate a synthetic twin and validate it against the source")
		strict  = flag.Bool("strict", false, "with -twin: exit nonzero if any KS test rejects")
	)
	flag.Parse()
	if *logs == "" {
		fmt.Fprintln(os.Stderr, "lsmcal: -logs is required")
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(*logs, *days, *timeout, *seed, *out, *twin, *strict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmcal:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(logDir string, days int, timeout, seed int64, outPath string, twin, strict bool) (int, error) {
	source, err := characterizeLogs(logDir, days, timeout, seed)
	if err != nil {
		return 0, err
	}
	fmt.Printf("source: %d clients, %d sessions, %d transfers over %d day(s)\n",
		source.Basic.Users, source.Basic.Sessions, source.Basic.Transfers, source.Basic.Days)

	model, fitRep := calibrate.Fit(source)
	fmt.Printf("\nfitted model: %d clients, %d objects, base rate %.6g/s, interest alpha %.4f (R2 %.3f), transfers/session alpha %.4f (R2 %.3f)\n",
		model.NumClients, model.NumObjects, model.BaseArrivalRate,
		model.Interest.Alpha, fitRep.InterestR2,
		model.TransfersPerSession.Alpha, fitRep.PerSessionR2)
	fmt.Printf("  gaps lognormal(mu %.4f, sigma %.4f), lengths lognormal(mu %.4f, sigma %.4f), feed preference %.3f\n",
		model.IntraSessionGap.Mu, model.IntraSessionGap.Sigma,
		model.TransferLength.Mu, model.TransferLength.Sigma, model.FeedPreference)
	fmt.Printf("  arrival calibration: %d observed sessions, %.1f expected from the fitted process (%d profile day(s))\n",
		fitRep.SourceSessions, fitRep.ExpectedSessions, fitRep.ProfileDays)
	for _, n := range fitRep.Notes {
		fmt.Printf("  note: %s\n", n)
	}

	if outPath != "" {
		if err := model.Save(outPath); err != nil {
			return 0, err
		}
		fmt.Printf("\nmodel spec written to %s\n", outPath)
	}
	if !twin {
		return 0, nil
	}

	fmt.Printf("\nregenerating twin (seed %d)...\n", seed)
	twinChar, err := calibrate.Twin(model, seed, timeout)
	if err != nil {
		return 0, err
	}
	rep := calibrate.Validate(source, twinChar)
	fmt.Println()
	if err := rep.Render(os.Stdout); err != nil {
		return 0, err
	}
	if rejects := rep.Rejections(); len(rejects) > 0 {
		fmt.Printf("\n%d of %d KS tests reject at alpha %.2g\n", len(rejects), len(rep.Checks), rep.Alpha)
		if strict {
			return 1, nil
		}
	} else {
		fmt.Printf("\nall KS tests pass at alpha %.2g\n", rep.Alpha)
	}
	return 0, nil
}

// characterizeLogs runs the logs → trace → characterization front half
// shared with lsmchar.
func characterizeLogs(logDir string, days int, timeout, seed int64) (*core.Characterization, error) {
	paths, err := wmslog.FindLogs(logDir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no wms-*.log or wms-*.log.gz files under %s", logDir)
	}
	entries, st, err := wmslog.ReadFiles(paths, true)
	if err != nil {
		return nil, err
	}
	fmt.Printf("parsed %d entries from %d files (%d malformed lines skipped)\n",
		st.Entries, len(paths), st.Malformed)

	horizon := int64(days) * 86400
	tr, err := trace.FromEntries(entries, wmslog.TraceEpoch, horizon)
	if err != nil {
		return nil, err
	}
	clean, sanReport := tr.Sanitize()
	fmt.Println(sanReport)
	return core.Characterize(clean, timeout, nil, seed)
}
