package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gismo"
	"repro/internal/simulate"
)

// writeTestLogs fabricates a small two-day log directory.
func writeTestLogs(t *testing.T) string {
	t.Helper()
	m, err := gismo.Scaled(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gismo.GenerateSeeded(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(w, simulate.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := res.WriteLogs(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunFitsAndValidatesTwin(t *testing.T) {
	logDir := writeTestLogs(t)
	outPath := filepath.Join(t.TempDir(), "model.json")
	code, err := run(logDir, 2, 1500, 5, outPath, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("strict twin validation failed with exit code %d", code)
	}

	// The written spec loads back through the strict loader.
	m, err := gismo.LoadModel(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Horizon != 2*86400 {
		t.Errorf("fitted horizon = %d", m.Horizon)
	}
	if m.Profile == nil {
		t.Error("fitted model carries no empirical profile")
	}
}

func TestRunWithoutTwinWritesSpecOnly(t *testing.T) {
	logDir := writeTestLogs(t)
	outPath := filepath.Join(t.TempDir(), "model.json")
	code, err := run(logDir, 2, 1500, 1, outPath, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsEmptyDir(t *testing.T) {
	if _, err := run(t.TempDir(), 2, 1500, 1, "", false, false); err == nil {
		t.Error("empty log dir: want error")
	}
}
