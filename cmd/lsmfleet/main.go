// Command lsmfleet runs the fleet front-end for a cluster of lsmserve
// nodes, and merges their per-node transfer logs into one canonical
// log.
//
// Redirector mode (default): accept client HELLO/START lookups and
// answer REDIRECT to a node picked by the configured policy; accept
// node REGISTER/BEAT registrations with heartbeat-TTL liveness:
//
//	lsmfleet [-addr 127.0.0.1:8600] [-policy hash|least-loaded|round-robin]
//	         [-ttl 2s] [-metrics host:port]
//
// Nodes join with `lsmserve -fleet <addr>`; clients replay through the
// front-end with `lsmload -addr <addr> -frontend`. The redirector runs
// until interrupted, printing node-set changes as they happen (a
// supervisor script can wait for "nodes: 3 registered"). With -metrics
// the fleet state (nodes up, redirects, heartbeat expiries, open
// connections) is served as plain-text counters at
// http://host:port/metrics — the machine-readable form of those status
// lines, and what scripts/e2e_fleet.sh polls.
//
// Merge mode: deterministically merge per-node logs (files or
// directories of daily logs) by (end-time, session, seq) and print the
// realization digest — the md5 over the timing-independent identity of
// the served workload, equal across any node assignment that served
// the same transfers:
//
//	lsmfleet -merge merged.log node1.log node2.log node3.log
//
// Inputs may be canonical text or binary-framed wmslog files in any
// mix (format auto-detected by magic bytes, gzip transparent); the
// merged output is always canonical text, so the digest contracts stay
// anchored on the text form.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/wmslog"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8600", "listen address (redirector mode)")
		policy  = flag.String("policy", "hash", "node pick policy: hash, least-loaded, round-robin")
		ttl     = flag.Duration("ttl", 2*time.Second, "node heartbeat TTL; silent nodes expire and stop receiving routes")
		metrics = flag.String("metrics", "", "optional address for the plain-text /metrics endpoint (redirector mode)")
		merge   = flag.String("merge", "", "merge mode: write the merged per-node logs (positional args) here")
	)
	flag.Parse()

	var err error
	if *merge != "" {
		err = runMerge(*merge, flag.Args(), os.Stdout)
	} else {
		interrupt := make(chan os.Signal, 1)
		signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
		err = runRedirector(*addr, *policy, *ttl, *metrics, interrupt, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmfleet:", err)
		os.Exit(1)
	}
}

// runMerge merges per-node logs (each input a file or a directory of
// daily logs) into one canonical log at out.
func runMerge(out string, inputs []string, w io.Writer) error {
	if len(inputs) == 0 {
		return fmt.Errorf("merge mode wants per-node log files or directories as arguments")
	}
	var paths []string
	for _, in := range inputs {
		fi, err := os.Stat(in)
		if err != nil {
			return err
		}
		if fi.IsDir() {
			found, err := wmslog.FindLogs(in)
			if err != nil {
				return err
			}
			if len(found) == 0 {
				return fmt.Errorf("no logs under %s", in)
			}
			paths = append(paths, found...)
		} else {
			paths = append(paths, in)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	stats, err := wmslog.MergeFiles(f, paths)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(out)
		return err
	}
	fmt.Fprintf(w, "merged %d entries (%d tagged, %d binary-framed) from %d logs into %s\n",
		stats.Entries, stats.Tagged, stats.Binary, stats.Files, out)
	fmt.Fprintf(w, "realization md5=%s\n", stats.Realization)
	return nil
}

// runRedirector serves the fleet front-end until interrupted, printing
// node-set changes and exposing /metrics when metricsAddr is non-empty.
func runRedirector(addr, policy string, ttl time.Duration, metricsAddr string, interrupt <-chan os.Signal, w io.Writer) error {
	p, err := cluster.NewPolicy(policy)
	if err != nil {
		return err
	}
	cfg := cluster.DefaultRedirectorConfig()
	cfg.Policy = p
	cfg.TTL = ttl
	rd, err := cluster.ServeRedirector(addr, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fleet redirector on %s (policy %s, ttl %v)\n", rd.Addr(), p.Name(), ttl)
	if metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Set("nodes_up", func() int64 { return int64(len(rd.Registry().Alive(time.Now()))) })
		reg.Set("nodes_registered", rd.Registry().Registered)
		reg.Set("heartbeat_expiries", rd.Registry().Expired)
		reg.Set("redirects", rd.Redirects)
		reg.Set("no_node_errors", rd.NoNodeErrors)
		reg.Set("conns_open", rd.OpenConns)
		ms, err := telemetry.Serve(metricsAddr, reg)
		if err != nil {
			rd.Close()
			return err
		}
		defer ms.Close()
		fmt.Fprintf(w, "metrics on http://%s/metrics\n", ms.Addr())
	}

	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	status := time.NewTicker(10 * time.Second)
	defer status.Stop()
	lastNodes := -1
	for {
		select {
		case <-interrupt:
			fmt.Fprintln(w, "\nshutting down")
			return rd.Close()
		case <-ticker.C:
			if n := len(rd.Registry().Alive(time.Now())); n != lastNodes {
				lastNodes = n
				fmt.Fprintf(w, "nodes: %d registered\n", n)
			}
		case <-status.C:
			fmt.Fprintf(w, "nodes=%d redirects=%d no-node-errors=%d\n",
				len(rd.Registry().Alive(time.Now())), rd.Redirects(), rd.NoNodeErrors())
		}
	}
}
