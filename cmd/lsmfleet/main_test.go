package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wmslog"
)

func writeTaggedLog(t *testing.T, path string, sessions ...int64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := wmslog.NewWriter(f)
	for _, s := range sessions {
		e := &wmslog.Entry{
			Timestamp:    time.Date(2002, 1, 7, 0, 0, int(s%50), 0, time.UTC),
			ClientIP:     "127.0.0.1",
			PlayerID:     "player-1",
			URIStem:      "/live/feed1",
			Duration:     5,
			Bytes:        100,
			AvgBandwidth: 160,
			Referer:      wmslog.SessionRef(s, 0),
			Status:       200,
			ASNumber:     1,
			Country:      "BR",
		}
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRunMerge: per-node logs merge into one parseable log with a
// partition-independent realization digest.
func TestRunMerge(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "node1.log")
	b := filepath.Join(dir, "node2.log")
	writeTaggedLog(t, a, 0, 2, 4)
	writeTaggedLog(t, b, 1, 3)
	single := filepath.Join(dir, "single.log")
	writeTaggedLog(t, single, 0, 1, 2, 3, 4)

	var out bytes.Buffer
	merged := filepath.Join(dir, "merged.log")
	if err := runMerge(merged, []string{a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "merged 5 entries (5 tagged, 0 binary-framed) from 2 logs") {
		t.Fatalf("merge output: %s", out.String())
	}
	entries, _, err := wmslog.ReadFiles([]string{merged}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("merged log has %d entries", len(entries))
	}

	var out2 bytes.Buffer
	merged2 := filepath.Join(dir, "merged2.log")
	if err := runMerge(merged2, []string{single}, &out2); err != nil {
		t.Fatal(err)
	}
	digest := func(s string) string {
		i := strings.Index(s, "realization md5=")
		if i < 0 {
			t.Fatalf("no digest in %q", s)
		}
		return strings.TrimSpace(s[i:])
	}
	if digest(out.String()) != digest(out2.String()) {
		t.Fatalf("fleet and single digests differ:\n%s\n%s", out.String(), out2.String())
	}

	if err := runMerge(filepath.Join(dir, "x.log"), nil, &out); err == nil {
		t.Fatal("merge with no inputs accepted")
	}
}

// TestRunRedirectorLifecycle: the redirector comes up, reports node
// registrations, serves a lookup, and shuts down on interrupt.
func TestRunRedirectorLifecycle(t *testing.T) {
	interrupt := make(chan os.Signal, 1)
	out := &syncWriter{b: &strings.Builder{}}
	done := make(chan error, 1)
	go func() { done <- runRedirector("127.0.0.1:0", "hash", time.Second, "127.0.0.1:0", interrupt, out) }()

	// The listen address is ephemeral; poll the output for it.
	addr := ""
	deadline := time.Now().Add(3 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("redirector never reported its address: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "fleet redirector on "); ok {
				addr = strings.Fields(rest)[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	agent, err := cluster.StartAgent(addr, "10.0.0.1:9001", 50*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	for !strings.Contains(out.String(), "nodes: 1 registered") {
		if time.Now().After(deadline) {
			t.Fatalf("registration never reported: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, err := cluster.Lookup(addr, "player-x", "/live/feed1", time.Second)
	if err != nil || got != "10.0.0.1:9001" {
		t.Fatalf("lookup: %q, %v", got, err)
	}

	// The /metrics endpoint reports the same state the log lines do.
	maddr := ""
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "metrics on http://"); ok {
			maddr = strings.TrimSuffix(strings.Fields(rest)[0], "/metrics")
		}
	}
	if maddr == "" {
		t.Fatalf("metrics address never reported: %q", out.String())
	}
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"nodes_up 1\n", "nodes_registered 1\n", "redirects 1\n", "no_node_errors 0\n", "heartbeat_expiries 0\n"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	interrupt <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("redirector did not shut down")
	}
	if err := runRedirector("127.0.0.1:0", "bogus", time.Second, "", interrupt, &out2{}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// syncWriter serializes concurrent writes from the redirector loop with
// the test's reads.
type syncWriter struct {
	mu sync.Mutex
	b  *strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

type out2 struct{}

func (out2) Write(p []byte) (int, error) { return len(p), nil }
