package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/liveserver"
	"repro/internal/wmslog"
)

// TestShutdownFlushesTransferLog covers the interrupt path: a transfer
// completes just before shutdown, and its entry must survive in the log
// file — flushed and closed — after the loop returns.
func TestShutdownFlushesTransferLog(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "transfers.log")
	a, err := newApp(appConfig{addr: "127.0.0.1:0", logPath: logPath, rateBps: 110000,
		maxConns: 16, writeTimeout: 10 * time.Second, idleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	interrupt := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- a.loop(interrupt, time.Hour, io.Discard) }()

	c, err := liveserver.Dial(a.srv.Addr(), "player-test-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch("/live/feed1", 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.Close()

	interrupt <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("loop returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete")
	}

	// The entry must be on disk: without the shutdown flush it would
	// still be sitting in the 64 KiB writer buffer.
	entries, st, err := wmslog.ReadFiles([]string{logPath}, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed != 0 {
		t.Errorf("malformed lines: %d", st.Malformed)
	}
	if len(entries) != 1 {
		t.Fatalf("logged %d entries, want 1", len(entries))
	}
	if entries[0].PlayerID != "player-test-1" || entries[0].URIStem != "/live/feed1" {
		t.Errorf("unexpected entry: %+v", entries[0])
	}
	if entries[0].Bytes <= 0 {
		t.Errorf("entry bytes = %d", entries[0].Bytes)
	}

	// Shutdown is idempotent.
	if err := a.shutdown(); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestShutdownWithoutLog covers the no-log configuration.
func TestShutdownWithoutLog(t *testing.T) {
	a, err := newApp(appConfig{addr: "127.0.0.1:0", rateBps: 110000,
		maxConns: 4, writeTimeout: 10 * time.Second, idleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	interrupt := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- a.loop(interrupt, time.Hour, io.Discard) }()
	interrupt <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("loop returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}

// TestShutdownWithActiveTransfer: shutting down while a transfer is
// still streaming must not lose already-completed entries nor corrupt
// the log (the in-flight transfer itself is aborted unlogged — live
// viewers cannot be deferred).
func TestShutdownWithActiveTransfer(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "transfers.log")
	a, err := newApp(appConfig{addr: "127.0.0.1:0", logPath: logPath, rateBps: 110000,
		maxConns: 16, writeTimeout: 10 * time.Second, idleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	// One transfer completes before shutdown…
	done1, err := liveserver.Dial(a.srv.Addr(), "player-done")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done1.Watch("/live/feed1", 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	done1.Close()

	// …another is mid-stream when the interrupt lands.
	mid, err := liveserver.Dial(a.srv.Addr(), "player-mid")
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	watchDone := make(chan error, 1)
	go func() {
		_, err := mid.Watch("/live/feed2", time.Hour)
		watchDone <- err
	}()
	time.Sleep(200 * time.Millisecond) // let the transfer start streaming

	shutDone := make(chan error, 1)
	go func() { shutDone <- a.shutdown() }()
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung on an active transfer")
	}
	<-watchDone // client observes the aborted stream

	// The completed entry is on disk, intact.
	entries, st, err := wmslog.ReadFiles([]string{logPath}, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed != 0 {
		t.Fatalf("log corrupt after shutdown: %d malformed lines", st.Malformed)
	}
	found := false
	for _, e := range entries {
		if e.PlayerID == "player-done" {
			found = true
		}
	}
	if !found {
		t.Fatalf("completed transfer missing from flushed log (%d entries)", len(entries))
	}
}
