package main

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestJoinFleetRegistersAndDeregisters: a fleet-joined lsmserve is
// routable through the redirector, and shutdown deregisters it before
// the server stops serving.
func TestJoinFleetRegistersAndDeregisters(t *testing.T) {
	rcfg := cluster.DefaultRedirectorConfig()
	rcfg.TTL = 5 * time.Second
	rd, err := cluster.ServeRedirector("127.0.0.1:0", rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	a, err := newApp(appConfig{addr: "127.0.0.1:0", rateBps: 110000,
		maxConns: 16, writeTimeout: 10 * time.Second, idleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.joinFleet(rd.Addr(), "", 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for len(rd.Registry().Alive(time.Now())) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("node never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	addr, err := cluster.Lookup(rd.Addr(), "player-1", "/live/feed1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if addr != a.srv.Addr() {
		t.Fatalf("fleet routes to %s, node listens on %s", addr, a.srv.Addr())
	}

	if err := a.shutdown(); err != nil {
		t.Fatal(err)
	}
	for len(rd.Registry().Alive(time.Now())) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("node still registered after shutdown")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
