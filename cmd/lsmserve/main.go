// Command lsmserve runs the live streaming media server standalone: a
// TCP implementation of the minimal MMS-like protocol serving the two
// reality-show feeds, logging completed transfers as Windows-Media-
// Server-style entries.
//
// Usage:
//
//	lsmserve [-addr 127.0.0.1:8555] [-log transfers.log] [-rate 110000]
//
// Connect with the liveserver client package or the livereplay example.
// The server runs until interrupted (SIGINT or SIGTERM); on shutdown
// the transfer log is flushed and closed before the process exits, so
// the last entries are never lost.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/liveserver"
	"repro/internal/wmslog"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8555", "listen address")
		logPath = flag.String("log", "", "optional path for WMS-style transfer log")
		rate    = flag.Int("rate", 110000, "stream rate in bits/second")
		maxConn = flag.Int("maxconns", 256, "maximum concurrent connections")
	)
	flag.Parse()

	app, err := newApp(*addr, *logPath, *rate, *maxConn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmserve:", err)
		os.Exit(1)
	}
	fmt.Printf("live streaming server on %s (%d bit/s)\n", app.srv.Addr(), *rate)

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	if err := app.loop(interrupt, 10*time.Second, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lsmserve:", err)
		os.Exit(1)
	}
}

// app bundles the server with its transfer log so the shutdown path —
// stop serving, flush and close the log exactly once — is testable.
type app struct {
	srv *liveserver.Server

	logMu     sync.Mutex
	logWriter *wmslog.Writer
	logFile   *os.File

	closeOnce sync.Once
	closeErr  error
}

// newApp starts the server, wiring completed transfers into the log
// sink when logPath is non-empty.
func newApp(addr, logPath string, rateBps, maxConns int) (*app, error) {
	cfg := liveserver.DefaultServerConfig()
	cfg.MaxConns = maxConns
	// Pick frame pacing for the requested rate at ~10 frames/second.
	cfg.FrameInterval = 100 * time.Millisecond
	cfg.FrameBytes = rateBps / 8 / 10
	if cfg.FrameBytes < 64 {
		cfg.FrameBytes = 64
	}

	a := &app{}
	if logPath != "" {
		f, err := os.Create(logPath)
		if err != nil {
			return nil, err
		}
		a.logFile = f
		a.logWriter = wmslog.NewWriter(f)
		cfg.Sink = a.logTransfer
	}

	srv, err := liveserver.Serve(addr, cfg)
	if err != nil {
		if a.logFile != nil {
			a.logFile.Close()
		}
		return nil, err
	}
	a.srv = srv
	return a, nil
}

// logTransfer appends one completed transfer to the log.
func (a *app) logTransfer(r liveserver.TransferRecord) {
	entry := &wmslog.Entry{
		Timestamp:    r.End,
		ClientIP:     r.RemoteIP,
		PlayerID:     r.PlayerID,
		URIStem:      r.URI,
		Duration:     int64(r.End.Sub(r.Start).Seconds()),
		Bytes:        r.Bytes,
		AvgBandwidth: bandwidthOf(r),
		Status:       200,
		Country:      "BR",
		ASNumber:     1,
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	if a.logWriter == nil {
		return // shut down; transfer raced the close
	}
	if err := a.logWriter.Write(entry); err != nil {
		fmt.Fprintln(os.Stderr, "lsmserve: log:", err)
	}
	// Flush per entry: transfer completions are rare enough that
	// durability (ungraceful kills, tail -f) beats write batching.
	a.logWriter.Flush()
}

// loop prints periodic status until a signal arrives, then shuts down.
func (a *app) loop(interrupt <-chan os.Signal, statusEvery time.Duration, w io.Writer) error {
	ticker := time.NewTicker(statusEvery)
	defer ticker.Stop()
	for {
		select {
		case <-interrupt:
			fmt.Fprintln(w, "\nshutting down")
			return a.shutdown()
		case <-ticker.C:
			fmt.Fprintf(w, "active=%d served=%d refused=%d\n",
				a.srv.ActiveTransfers(), a.srv.ServedTransfers(), a.srv.RefusedConns())
		}
	}
}

// shutdown stops the server — which drains the connection handlers, so
// every completed transfer has reached the sink — then flushes and
// closes the log. Idempotent; the first error wins.
func (a *app) shutdown() error {
	a.closeOnce.Do(func() {
		a.closeErr = a.srv.Close()
		a.logMu.Lock()
		defer a.logMu.Unlock()
		if a.logFile == nil {
			return
		}
		if err := a.logWriter.Flush(); err != nil && a.closeErr == nil {
			a.closeErr = err
		}
		if err := a.logFile.Close(); err != nil && a.closeErr == nil {
			a.closeErr = err
		}
		a.logWriter = nil
		a.logFile = nil
	})
	return a.closeErr
}

func bandwidthOf(r liveserver.TransferRecord) int64 {
	secs := r.End.Sub(r.Start).Seconds()
	if secs <= 0 {
		return 0
	}
	return int64(float64(r.Bytes*8) / secs)
}
