// Command lsmserve runs the live streaming media server standalone: a
// TCP implementation of the minimal MMS-like protocol serving the two
// reality-show feeds, logging completed transfers as Windows-Media-
// Server-style entries.
//
// Usage:
//
//	lsmserve [-addr 127.0.0.1:8555] [-log transfers.log] [-log-format text|binary]
//	         [-metrics host:port] [-rate 110000]
//	         [-max-conns 256] [-write-timeout 10s] [-idle-timeout 60s]
//	         [-serve-lanes N]
//	         [-fleet host:port] [-advertise host:port] [-beat 500ms]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -log-format binary writes the transfer log in the framed binary
// wmslog format (decoded transparently by every reader — lsmload
// -check, lsmfleet -merge, lsmlog). -metrics serves the plain-text
// counters endpoint (conns, refusals, transfers) at
// http://host:port/metrics, the ops surface scripts poll instead of
// grepping logs.
//
// -serve-lanes caps how many CPUs the server schedules across
// (GOMAXPROCS); 0 — the default — uses every schedulable CPU, matching
// the simulator's serve-lane default so a node sized for N lanes
// behaves the same offline and online.
//
// -fleet joins the node to an lsmfleet redirector: the node registers
// its address (-advertise overrides what it announces, for NAT or
// multi-interface hosts) and heartbeats its load every -beat, so the
// front-end routes client transfers here and detects the node's death.
//
// -max-conns bounds concurrently served connections: a connection
// beyond the limit is answered with "ERR busy" and closed immediately —
// live viewers cannot be deferred, so capacity exhaustion is made
// visible, never a hang. -write-timeout disconnects readers that stop
// draining their socket; -idle-timeout drops half-open connections that
// go silent outside a transfer.
//
// Connect with the liveserver client package, the livereplay example,
// or drive it with generated workloads via lsmload. The server runs
// until interrupted (SIGINT or SIGTERM); on shutdown the transfer log
// is flushed and closed before the process exits, so the last entries
// are never lost.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/liveserver"
	"repro/internal/prof"
	"repro/internal/telemetry"
	"repro/internal/wmslog"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8555", "listen address")
		logPath  = flag.String("log", "", "optional path for WMS-style transfer log")
		logFmt   = flag.String("log-format", "text", "transfer log format: text (canonical) or binary (framed fast path)")
		metrics  = flag.String("metrics", "", "optional address for the plain-text /metrics endpoint")
		rate     = flag.Int("rate", 110000, "stream rate in bits/second")
		maxConn  = flag.Int("max-conns", 256, "maximum concurrent connections; extras get 'ERR busy', never a hang")
		writeTO  = flag.Duration("write-timeout", 10*time.Second, "disconnect a client that stops reading after this long (0 disables)")
		idleTO   = flag.Duration("idle-timeout", 60*time.Second, "drop connections silent outside a transfer for this long (0 disables)")
		maxConnO = flag.Int("maxconns", 0, "deprecated alias for -max-conns")
		lanes    = flag.Int("serve-lanes", 0, "CPUs to schedule across (GOMAXPROCS; 0 = all)")

		fleet     = flag.String("fleet", "", "register with the lsmfleet redirector at this address and heartbeat load")
		advertise = flag.String("advertise", "", "address to advertise to the fleet (default: the actual listen address)")
		beat      = flag.Duration("beat", 500*time.Millisecond, "fleet heartbeat interval")

		profiles prof.Profiles
	)
	profiles.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *maxConnO != 0 {
		*maxConn = *maxConnO
	}
	if *logFmt != "text" && *logFmt != "binary" {
		fmt.Fprintf(os.Stderr, "lsmserve: -log-format %q: want text or binary\n", *logFmt)
		os.Exit(2)
	}
	if *lanes > 0 {
		runtime.GOMAXPROCS(*lanes)
	}
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmserve:", err)
		os.Exit(1)
	}

	app, err := newApp(appConfig{
		addr:         *addr,
		logPath:      *logPath,
		logBinary:    *logFmt == "binary",
		metricsAddr:  *metrics,
		rateBps:      *rate,
		maxConns:     *maxConn,
		writeTimeout: *writeTO,
		idleTimeout:  *idleTO,
	})
	if err != nil {
		profiles.Stop()
		fmt.Fprintln(os.Stderr, "lsmserve:", err)
		os.Exit(1)
	}
	fmt.Printf("live streaming server on %s (%d bit/s, %d serve lanes)\n",
		app.srv.Addr(), *rate, runtime.GOMAXPROCS(0))
	if app.metrics != nil {
		fmt.Printf("metrics on http://%s/metrics\n", app.metrics.Addr())
	}
	if *fleet != "" {
		if err := app.joinFleet(*fleet, *advertise, *beat); err != nil {
			app.shutdown()
			profiles.Stop()
			fmt.Fprintln(os.Stderr, "lsmserve:", err)
			os.Exit(1)
		}
		fmt.Printf("registered with fleet redirector %s\n", *fleet)
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	err = app.loop(interrupt, 10*time.Second, os.Stdout)
	// The profiles cover the server's full lifetime: they stop after
	// shutdown has drained the handlers, so the artifacts include every
	// served transfer.
	if perr := profiles.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmserve:", err)
		os.Exit(1)
	}
}

// appConfig collects what newApp needs to assemble a node.
type appConfig struct {
	addr    string
	logPath string
	// logBinary selects the framed binary log format over canonical
	// text for the transfer log.
	logBinary bool
	// metricsAddr, when non-empty, serves the plain-text /metrics
	// counters endpoint there.
	metricsAddr  string
	rateBps      int
	maxConns     int
	writeTimeout time.Duration
	idleTimeout  time.Duration
}

// app bundles the server with its transfer log so the shutdown path —
// stop serving, flush and close the log exactly once — is testable.
// Connection handlers complete (and log) concurrently; the SyncWriter
// serializes them.
type app struct {
	srv     *liveserver.Server
	agent   *cluster.Agent    // nil unless the node joined a fleet
	metrics *telemetry.Server // nil unless -metrics was given

	logWriter *wmslog.SyncWriter
	logFile   *os.File

	closeOnce sync.Once
	closeErr  error
}

// joinFleet registers the node with the redirector and starts the
// heartbeat loop, advertising the given address (default: the actual
// listen address).
func (a *app) joinFleet(frontend, advertise string, beat time.Duration) error {
	if advertise == "" {
		advertise = a.srv.Addr()
	}
	agent, err := cluster.StartAgent(frontend, advertise, beat, func() (int64, int64) {
		return a.srv.ActiveTransfers(), a.srv.ServedTransfers()
	})
	if err != nil {
		return err
	}
	a.agent = agent
	return nil
}

// newApp starts the server, wiring completed transfers into the log
// sink when a log path is configured and exposing /metrics when a
// metrics address is.
func newApp(ac appConfig) (*app, error) {
	cfg := liveserver.DefaultServerConfig()
	cfg.MaxConns = ac.maxConns
	cfg.WriteTimeout = ac.writeTimeout
	cfg.IdleTimeout = ac.idleTimeout
	// Pick frame pacing for the requested rate at ~10 frames/second.
	cfg.FrameInterval = 100 * time.Millisecond
	cfg.FrameBytes = ac.rateBps / 8 / 10
	if cfg.FrameBytes < 64 {
		cfg.FrameBytes = 64
	}

	a := &app{}
	if ac.logPath != "" {
		f, err := os.Create(ac.logPath)
		if err != nil {
			return nil, err
		}
		a.logFile = f
		var ew wmslog.EntryWriter
		if ac.logBinary {
			ew = wmslog.NewBinaryWriter(f)
		} else {
			ew = wmslog.NewWriter(f)
		}
		a.logWriter = wmslog.NewSyncWriter(ew)
		cfg.Sink = a.logTransfer
	}

	srv, err := liveserver.Serve(ac.addr, cfg)
	if err != nil {
		if a.logFile != nil {
			a.logFile.Close()
		}
		return nil, err
	}
	a.srv = srv
	if ac.metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.Set("conns_open", srv.OpenConns)
		reg.Set("conns_accepted", srv.AcceptedConns)
		reg.Set("conns_refused", srv.RefusedConns)
		reg.Set("transfers_active", srv.ActiveTransfers)
		reg.Set("transfers_served", srv.ServedTransfers)
		if a.logWriter != nil {
			reg.Set("log_entries", a.logWriter.Count)
		}
		ms, err := telemetry.Serve(ac.metricsAddr, reg)
		if err != nil {
			a.shutdown()
			return nil, err
		}
		a.metrics = ms
	}
	return a, nil
}

// logTransfer appends one completed transfer to the log. It is only
// wired as the sink when the log is configured, and the server drains
// every handler before shutdown closes the file, so the writer is
// always live here.
func (a *app) logTransfer(r liveserver.TransferRecord) {
	if err := a.logWriter.Write(liveserver.RecordEntry(r)); err != nil {
		fmt.Fprintln(os.Stderr, "lsmserve: log:", err)
	}
	// Flush per entry: transfer completions are rare enough that
	// durability (ungraceful kills, tail -f) beats write batching.
	a.logWriter.Flush()
}

// loop prints periodic status until a signal arrives, then shuts down.
func (a *app) loop(interrupt <-chan os.Signal, statusEvery time.Duration, w io.Writer) error {
	ticker := time.NewTicker(statusEvery)
	defer ticker.Stop()
	for {
		select {
		case <-interrupt:
			fmt.Fprintln(w, "\nshutting down")
			return a.shutdown()
		case <-ticker.C:
			fmt.Fprintf(w, "active=%d served=%d refused=%d\n",
				a.srv.ActiveTransfers(), a.srv.ServedTransfers(), a.srv.RefusedConns())
		}
	}
}

// shutdown leaves the fleet first (so the redirector stops routing new
// transfers here), then stops the server — which drains the connection
// handlers, so every completed transfer has reached the sink and
// nothing logs concurrently anymore — then flushes and closes the log.
// Idempotent; the first error wins.
func (a *app) shutdown() error {
	a.closeOnce.Do(func() {
		if a.agent != nil {
			a.agent.Close()
		}
		if a.metrics != nil {
			a.metrics.Close()
		}
		a.closeErr = a.srv.Close()
		if a.logFile == nil {
			return
		}
		if err := a.logWriter.Flush(); err != nil && a.closeErr == nil {
			a.closeErr = err
		}
		if err := a.logFile.Close(); err != nil && a.closeErr == nil {
			a.closeErr = err
		}
	})
	return a.closeErr
}
