// Command lsmserve runs the live streaming media server standalone: a
// TCP implementation of the minimal MMS-like protocol serving the two
// reality-show feeds, logging completed transfers as Windows-Media-
// Server-style entries.
//
// Usage:
//
//	lsmserve [-addr 127.0.0.1:8555] [-log transfers.log] [-rate 110000]
//
// Connect with the liveserver client package or the livereplay example.
// The server runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/liveserver"
	"repro/internal/wmslog"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8555", "listen address")
		logPath = flag.String("log", "", "optional path for WMS-style transfer log")
		rate    = flag.Int("rate", 110000, "stream rate in bits/second")
		maxConn = flag.Int("maxconns", 256, "maximum concurrent connections")
	)
	flag.Parse()
	if err := run(*addr, *logPath, *rate, *maxConn); err != nil {
		fmt.Fprintln(os.Stderr, "lsmserve:", err)
		os.Exit(1)
	}
}

func run(addr, logPath string, rateBps, maxConns int) error {
	cfg := liveserver.DefaultServerConfig()
	cfg.MaxConns = maxConns
	// Pick frame pacing for the requested rate at ~10 frames/second.
	cfg.FrameInterval = 100 * time.Millisecond
	cfg.FrameBytes = rateBps / 8 / 10
	if cfg.FrameBytes < 64 {
		cfg.FrameBytes = 64
	}

	var logMu sync.Mutex
	var logWriter *wmslog.Writer
	var logFile *os.File
	if logPath != "" {
		f, err := os.Create(logPath)
		if err != nil {
			return err
		}
		logFile = f
		logWriter = wmslog.NewWriter(f)
		cfg.Sink = func(r liveserver.TransferRecord) {
			entry := &wmslog.Entry{
				Timestamp:    r.End,
				ClientIP:     r.RemoteIP,
				PlayerID:     r.PlayerID,
				URIStem:      r.URI,
				Duration:     int64(r.End.Sub(r.Start).Seconds()),
				Bytes:        r.Bytes,
				AvgBandwidth: bandwidthOf(r),
				Status:       200,
				Country:      "BR",
				ASNumber:     1,
			}
			logMu.Lock()
			defer logMu.Unlock()
			if err := logWriter.Write(entry); err != nil {
				fmt.Fprintln(os.Stderr, "lsmserve: log:", err)
			}
			logWriter.Flush()
		}
	}

	srv, err := liveserver.Serve(addr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("live streaming server on %s (%d bit/s, objects %v)\n",
		srv.Addr(), rateBps, cfg.Objects)

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-interrupt:
			fmt.Println("\nshutting down")
			err := srv.Close()
			if logFile != nil {
				logMu.Lock()
				logWriter.Flush()
				logMu.Unlock()
				logFile.Close()
			}
			return err
		case <-ticker.C:
			fmt.Printf("active=%d served=%d refused=%d\n",
				srv.ActiveTransfers(), srv.ServedTransfers(), srv.RefusedConns())
		}
	}
}

func bandwidthOf(r liveserver.TransferRecord) int64 {
	secs := r.End.Sub(r.Start).Seconds()
	if secs <= 0 {
		return 0
	}
	return int64(float64(r.Bytes*8) / secs)
}
