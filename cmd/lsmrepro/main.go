// Command lsmrepro runs the full reproduction loop of Veloso et al.
// (IMC 2002): it instantiates the generative model with the paper's
// Table 2 parameters, generates and serves a synthetic workload, runs the
// hierarchical characterization, and reports every paper-versus-measured
// comparison — the material behind EXPERIMENTS.md.
//
// Usage:
//
//	lsmrepro [-scale 150] [-days 7] [-seed 1] [-outdir repro-out/]
//
// -scale 1 -days 28 reproduces the paper's full scale (~5.5M transfers;
// needs a few GB of memory and several minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	var (
		scale  = flag.Float64("scale", 150, "population/rate scale-down factor (1 = paper scale)")
		days   = flag.Int("days", 7, "trace length in days (paper: 28)")
		seed   = flag.Int64("seed", 1, "random seed")
		outdir = flag.String("outdir", "", "optional output directory for figures and comparisons")
	)
	flag.Parse()
	if err := run(*scale, *days, *seed, *outdir); err != nil {
		fmt.Fprintln(os.Stderr, "lsmrepro:", err)
		os.Exit(1)
	}
}

func run(scale float64, days int, seed int64, outdir string) error {
	cfg, err := core.DefaultConfig(scale, days, seed)
	if err != nil {
		return err
	}
	fmt.Printf("reproduction run: scale 1/%.0f, %d days, seed %d\n", scale, days, seed)
	rep, err := core.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s\n", rep.Sanitize)
	fmt.Printf("server load audit: %.4f%% of active seconds below 10%% CPU, %.4f%% of transfers\n",
		rep.Audit.TimeBelowFrac*100, rep.Audit.TransferBelowFrac*100)
	fmt.Printf("peak concurrent transfers: %d\n\n", rep.Peak)

	if err := rep.Table1().Render(os.Stdout); err != nil {
		return err
	}

	comps := rep.Comparisons()
	fmt.Println("\nPaper vs measured (Table 2 and headline fits):")
	if err := report.MarkdownTable(os.Stdout, comps); err != nil {
		return err
	}

	if outdir != "" {
		figDir := filepath.Join(outdir, "figures")
		var count int
		for _, fig := range rep.Char.Figures() {
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					continue
				}
				if _, err := s.SaveDat(figDir); err != nil {
					return err
				}
				count++
			}
		}
		compPath := filepath.Join(outdir, "comparisons.md")
		f, err := os.Create(compPath)
		if err != nil {
			return err
		}
		err = report.MarkdownTable(f, comps)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nwrote %d figure series under %s and comparisons to %s\n", count, figDir, compPath)
	}
	return nil
}
