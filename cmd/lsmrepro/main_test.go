package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesArtifacts(t *testing.T) {
	out := t.TempDir()
	if err := run(600, 2, 9, out); err != nil {
		t.Fatal(err)
	}
	comp, err := os.ReadFile(filepath.Join(out, "comparisons.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(comp)
	for _, want := range []string{"Figure 19", "transfer length lognormal mu", "Figure 13"} {
		if !strings.Contains(text, want) {
			t.Errorf("comparisons.md missing %q", want)
		}
	}
	dats, err := filepath.Glob(filepath.Join(out, "figures", "*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dats) < 20 {
		t.Errorf("only %d figure series", len(dats))
	}
}

func TestRunWithoutOutdir(t *testing.T) {
	if err := run(800, 2, 9, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run(0.1, 2, 9, ""); err == nil {
		t.Error("scale < 1: want error")
	}
}
