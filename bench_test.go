// Package repro's benchmark harness regenerates every table and figure of
// Veloso et al., "A Hierarchical Characterization of a Live Streaming
// Media Workload" (IMC 2002).
//
// One benchmark per paper artifact (Table 1, Figures 2-20, Table 2) plus
// the ablation benches called out in DESIGN.md. Each figure bench times
// the analysis that produces the figure's data and reports the figure's
// headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints both the cost of regenerating each artifact and the measured
// values next to which EXPERIMENTS.md records the paper's numbers.
//
// All benches share one deterministic synthetic trace: the paper's
// Table 2 parameters at 1/150 of the population over 7 of the 28 days
// (see DESIGN.md's substitution record).
package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gismo"
	"repro/internal/sessions"
	"repro/internal/simulate"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchScale and benchDays size the shared fixture. Scale 150 over 7
// days yields roughly 9,000 sessions / 33,000 transfers — large enough
// for stable fits, small enough that the full suite runs in minutes.
const (
	benchScale = 150
	benchDays  = 7
	benchSeed  = 2002
)

type benchFixture struct {
	model gismo.Model
	tr    *trace.Trace // sanitized
	set   *sessions.Set
	repo  *core.Report
}

var (
	fixtureOnce sync.Once
	fixture     *benchFixture
	fixtureErr  error
)

func getFixture(b *testing.B) *benchFixture {
	b.Helper()
	fixtureOnce.Do(func() {
		cfg, err := core.DefaultConfig(benchScale, benchDays, benchSeed)
		if err != nil {
			fixtureErr = err
			return
		}
		rep, err := core.Run(cfg)
		if err != nil {
			fixtureErr = err
			return
		}
		// Rebuild the sanitized trace and session set once for the
		// per-figure benches.
		rng := rand.New(rand.NewSource(benchSeed))
		w, err := gismo.Generate(cfg.Model, rng)
		if err != nil {
			fixtureErr = err
			return
		}
		res, err := simulate.Run(w, cfg.Server, rng.Uint64())
		if err != nil {
			fixtureErr = err
			return
		}
		clean, _ := res.Trace.Sanitize()
		set, err := sessions.Sessionize(clean, cfg.SessionTimeout)
		if err != nil {
			fixtureErr = err
			return
		}
		fixture = &benchFixture{model: cfg.Model, tr: clean, set: set, repo: rep}
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixture
}

// --- Table 1 ---------------------------------------------------------

func BenchmarkTable1BasicStats(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var users, transfers int
	for i := 0; i < b.N; i++ {
		users = f.tr.NumClients()
		transfers = f.tr.NumTransfers()
		_ = f.tr.TotalBytes()
		_ = f.tr.DistinctAS()
		_ = f.tr.DistinctIPs()
	}
	b.ReportMetric(float64(users), "users")
	b.ReportMetric(float64(transfers), "transfers")
	b.ReportMetric(float64(f.set.Count()), "sessions")
}

// --- Figure 2: client diversity --------------------------------------

func BenchmarkFigure2ClientDiversity(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var d *analyze.Diversity
	for i := 0; i < b.N; i++ {
		var err error
		d, err = analyze.AnalyzeDiversity(f.tr)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.NumAS), "ASes")
	b.ReportMetric(d.CountryShare["BR"], "BR_share")
}

// --- Figures 3, 4, 8: client concurrency, temporal, ACF --------------

func clientIntervals(f *benchFixture) []analyze.Interval {
	iv := make([]analyze.Interval, f.set.Count())
	for i, s := range f.set.Sessions {
		iv[i] = analyze.Interval{Start: s.Start, End: s.End}
	}
	return iv
}

func BenchmarkFigure3ClientConcurrency(b *testing.B) {
	f := getFixture(b)
	iv := clientIntervals(f)
	b.ResetTimer()
	var rep *analyze.ConcurrencyReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = analyze.Concurrency(iv, f.tr.Horizon)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Peak), "peak_clients")
	b.ReportMetric(rep.Marginal.Quantile(0.5), "median_clients")
}

func BenchmarkFigure4ClientTemporal(b *testing.B) {
	f := getFixture(b)
	iv := clientIntervals(f)
	rep, err := analyze.Concurrency(iv, f.tr.Horizon)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var day stats.BinnedSeries
	for i := 0; i < b.N; i++ {
		day, err = rep.Binned.FoldModulo(86400)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rep.Binned.FoldModulo(7 * 86400); err != nil {
			b.Fatal(err)
		}
	}
	// Trough (04-11h) versus evening peak (19-23h) mean concurrency.
	trough := meanRange(day.Values, 4*4, 11*4)
	evening := meanRange(day.Values, 19*4, 23*4)
	b.ReportMetric(trough, "trough_clients")
	b.ReportMetric(evening, "evening_clients")
}

func meanRange(vs []float64, lo, hi int) float64 {
	if hi > len(vs) {
		hi = len(vs)
	}
	if lo >= hi {
		return 0
	}
	var s float64
	for _, v := range vs[lo:hi] {
		s += v
	}
	return s / float64(hi-lo)
}

func BenchmarkFigure8Autocorrelation(b *testing.B) {
	f := getFixture(b)
	iv := clientIntervals(f)
	b.ResetTimer()
	var acfDay float64
	for i := 0; i < b.N; i++ {
		rep, err := analyze.Concurrency(iv, f.tr.Horizon)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.ACF) > 1440 {
			acfDay = rep.ACF[1440]
		}
	}
	b.ReportMetric(acfDay, "acf_1day")
}

// --- Figures 5, 6: client interarrivals and the Poisson replica ------

func BenchmarkFigure5ClientInterarrivals(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var inter []float64
	for i := 0; i < b.N; i++ {
		inter = analyze.ClientInterarrivals(f.set)
	}
	s, err := stats.Summarize(inter)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s.Mean, "mean_s")
	b.ReportMetric(s.P99, "p99_s")
}

func BenchmarkFigure6PiecewisePoisson(b *testing.B) {
	f := getFixture(b)
	measured := analyze.ClientInterarrivals(f.set)
	b.ResetTimer()
	var rep core.PoissonReplica
	for i := 0; i < b.N; i++ {
		rep = core.BuildPoissonReplica(f.set, f.tr.Horizon, measured, int64(i)+1)
	}
	b.ReportMetric(rep.KS, "ks_vs_measured")
}

// --- Figure 7: client interest profile --------------------------------

func BenchmarkFigure7ClientInterest(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var cl *analyze.ClientLayer
	for i := 0; i < b.N; i++ {
		var err error
		cl, err = analyze.AnalyzeClientLayer(f.set)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cl.InterestTransfers.Alpha, "alpha_transfers")
	b.ReportMetric(cl.InterestSessions.Alpha, "alpha_sessions")
}

// --- Figure 9: sessions versus timeout --------------------------------

func BenchmarkFigure9SessionsVsTimeout(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var pts []sessions.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sessions.SweepTimeout(f.tr, core.DefaultTimeoutSweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	var at1500, at4000 float64
	for _, p := range pts {
		if p.Timeout == 1500 {
			at1500 = float64(p.Sessions)
		}
		if p.Timeout == 4000 {
			at4000 = float64(p.Sessions)
		}
	}
	b.ReportMetric(at1500, "sessions_at_1500")
	b.ReportMetric((at1500-at4000)/at1500*100, "flattening_pct")
}

// --- Figures 10-14: session layer -------------------------------------

func BenchmarkFigure10OnTimeVsHour(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var sl *analyze.SessionLayer
	for i := 0; i < b.N; i++ {
		var err error
		sl, err = analyze.AnalyzeSessionLayer(f.set)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sl.OnHourR2, "hour_r2")
}

func BenchmarkFigure11SessionOnTime(b *testing.B) {
	f := getFixture(b)
	on := analyze.InterarrivalDisplay(f.set.OnTimes())
	b.ResetTimer()
	var fit dist.Lognormal
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = dist.FitLognormal(on)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.Mu, "mu")
	b.ReportMetric(fit.Sigma, "sigma")
}

func BenchmarkFigure12SessionOffTime(b *testing.B) {
	f := getFixture(b)
	off := f.set.OffTimes()
	if len(off) == 0 {
		b.Skip("no OFF times at this scale")
	}
	b.ResetTimer()
	var fit dist.Exponential
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = dist.FitExponential(off)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.MeanValue, "mean_s")
}

func BenchmarkFigure13TransfersPerSession(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var sl *analyze.SessionLayer
	for i := 0; i < b.N; i++ {
		var err error
		sl, err = analyze.AnalyzeSessionLayer(f.set)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sl.PerSessionFit.Alpha, "zipf_alpha")
}

func BenchmarkFigure14SessionTransferInterarrivals(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var fit dist.Lognormal
	for i := 0; i < b.N; i++ {
		gaps := analyze.InterarrivalDisplay(f.set.IntraSessionInterarrivals())
		var err error
		fit, err = dist.FitLognormal(gaps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.Mu, "mu")
	b.ReportMetric(fit.Sigma, "sigma")
}

// --- Figures 15-20: transfer layer -------------------------------------

func transferIntervals(f *benchFixture) []analyze.Interval {
	iv := make([]analyze.Interval, f.tr.NumTransfers())
	for i, t := range f.tr.Transfers {
		iv[i] = analyze.Interval{Start: t.Start, End: t.End()}
	}
	return iv
}

func BenchmarkFigure15TransferConcurrency(b *testing.B) {
	f := getFixture(b)
	iv := transferIntervals(f)
	b.ResetTimer()
	var rep *analyze.ConcurrencyReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = analyze.Concurrency(iv, f.tr.Horizon)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Peak), "peak_transfers")
}

func BenchmarkFigure16TransferTemporal(b *testing.B) {
	f := getFixture(b)
	iv := transferIntervals(f)
	rep, err := analyze.Concurrency(iv, f.tr.Horizon)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var day stats.BinnedSeries
	for i := 0; i < b.N; i++ {
		day, err = rep.Binned.FoldModulo(86400)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(day.Max(), "peak_bin_transfers")
}

func BenchmarkFigure17TransferInterarrivals(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var tl *analyze.TransferLayer
	for i := 0; i < b.N; i++ {
		var err error
		tl, err = analyze.AnalyzeTransferLayer(f.tr)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tl.TailBody.Alpha, "tail_alpha_body")
	b.ReportMetric(tl.TailFar.Alpha, "tail_alpha_far")
}

func BenchmarkFigure18TransferInterarrivalTemporal(b *testing.B) {
	f := getFixture(b)
	tl, err := analyze.AnalyzeTransferLayer(f.tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var day stats.BinnedSeries
	for i := 0; i < b.N; i++ {
		day, err = tl.InterarrivalBinned.FoldModulo(86400)
		if err != nil {
			b.Fatal(err)
		}
	}
	trough := meanRange(day.Values, 5*4, 11*4)
	evening := meanRange(day.Values, 19*4, 23*4)
	b.ReportMetric(trough, "trough_interarrival_s")
	b.ReportMetric(evening, "evening_interarrival_s")
}

func BenchmarkFigure19TransferLength(b *testing.B) {
	f := getFixture(b)
	lengths := make([]float64, f.tr.NumTransfers())
	for i, t := range f.tr.Transfers {
		lengths[i] = stats.LogDisplayValue(float64(t.Duration))
	}
	b.ResetTimer()
	var fit dist.Lognormal
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = dist.FitLognormal(lengths)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.Mu, "mu")
	b.ReportMetric(fit.Sigma, "sigma")
}

func BenchmarkFigure20TransferBandwidth(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var tl *analyze.TransferLayer
	for i := 0; i < b.N; i++ {
		var err error
		tl, err = analyze.AnalyzeTransferLayer(f.tr)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tl.BandwidthModes)), "modes")
	b.ReportMetric(tl.CongestionFrac, "congestion_frac")
}

// --- Table 2: the generative model round trip -------------------------

func BenchmarkTable2GenerativeModel(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var comps int
	for i := 0; i < b.N; i++ {
		comps = len(f.repo.Comparisons())
	}
	b.ReportMetric(float64(comps), "comparisons")
	// Round-trip quality: worst relative error across the Table 2 rows
	// that are direct model parameters.
	worst := 0.0
	for _, c := range f.repo.Comparisons() {
		switch c.Quantity {
		case "transfers/session Zipf alpha",
			"intra-session gap lognormal mu", "intra-session gap lognormal sigma",
			"transfer length lognormal mu", "transfer length lognormal sigma":
			if r := c.RelErr(); r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst*100, "worst_roundtrip_pct")
}

// --- Pipeline component benches ---------------------------------------

func BenchmarkPipelineGenerate(b *testing.B) {
	m, err := gismo.Scaled(benchScale, benchDays)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gismo.Generate(m, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineSimulate(b *testing.B) {
	m, err := gismo.Scaled(benchScale, benchDays)
	if err != nil {
		b.Fatal(err)
	}
	w, err := gismo.Generate(m, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := simulate.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(w, cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineSessionize(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sessions.Sessionize(f.tr, 1500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFullCharacterization(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Characterize(f.tr, 1500, nil, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) -----------------------------------

// BenchmarkAblationSessionTimeout quantifies how the choice of T_o
// distorts the session count (A1): the metric is the extra sessions (in
// percent) that T_o = 500 produces versus the paper's 1,500.
func BenchmarkAblationSessionTimeout(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var n500, n1500 int
	for i := 0; i < b.N; i++ {
		s500, err := sessions.Sessionize(f.tr, 500)
		if err != nil {
			b.Fatal(err)
		}
		s1500, err := sessions.Sessionize(f.tr, 1500)
		if err != nil {
			b.Fatal(err)
		}
		n500, n1500 = s500.Count(), s1500.Count()
	}
	b.ReportMetric(float64(n500-n1500)/float64(n1500)*100, "extra_sessions_pct")
}

// BenchmarkAblationPoissonWindow sweeps the piecewise-stationarity window
// (A2): wider windows smooth the diurnal modulation and distort the
// synthetic interarrival distribution; the metric is the KS distance at a
// 4-hour window versus the paper's 15 minutes.
func BenchmarkAblationPoissonWindow(b *testing.B) {
	f := getFixture(b)
	measured := analyze.InterarrivalDisplay(analyze.ClientInterarrivals(f.set))
	arrivals := f.set.ArrivalTimes()
	counts, err := stats.BinCounts(arrivals, f.tr.Horizon, 900)
	if err != nil {
		b.Fatal(err)
	}
	dayFold, err := counts.FoldModulo(86400)
	if err != nil {
		b.Fatal(err)
	}
	rateOf := func(t float64) float64 {
		slot := int(int64(t)%86400) / 900
		if slot < 0 || slot >= len(dayFold.Values) {
			return 0
		}
		return dayFold.Values[slot] / 900
	}
	run := func(window float64, seed int64) float64 {
		pp, err := dist.NewPiecewisePoisson(rateOf, window)
		if err != nil {
			b.Fatal(err)
		}
		synth := pp.Arrivals(rand.New(rand.NewSource(seed)), float64(f.tr.Horizon), nil)
		gaps := make([]float64, 0, len(synth))
		for i := 1; i < len(synth); i++ {
			gaps = append(gaps, stats.LogDisplayValue(synth[i]-synth[i-1]))
		}
		ks, err := dist.KolmogorovSmirnov2(measured, gaps)
		if err != nil {
			b.Fatal(err)
		}
		return ks
	}
	b.ResetTimer()
	var ks900, ks4h float64
	for i := 0; i < b.N; i++ {
		ks900 = run(900, int64(i)+1)
		ks4h = run(4*3600, int64(i)+1)
	}
	b.ReportMetric(ks900, "ks_900s")
	b.ReportMetric(ks4h, "ks_4h")
}

// BenchmarkAblationConcurrencyResolution compares the exact 1-second
// concurrency sweep against coarse 15-minute averaging (A3): the metric
// is the relative peak underestimate of the binned view.
func BenchmarkAblationConcurrencyResolution(b *testing.B) {
	f := getFixture(b)
	iv := transferIntervals(f)
	b.ResetTimer()
	var exactPeak, binnedPeak float64
	for i := 0; i < b.N; i++ {
		rep, err := analyze.Concurrency(iv, f.tr.Horizon)
		if err != nil {
			b.Fatal(err)
		}
		exactPeak = float64(rep.Peak)
		binnedPeak = rep.Binned.Max()
	}
	b.ReportMetric((exactPeak-binnedPeak)/exactPeak*100, "peak_underestimate_pct")
}

// BenchmarkAblationZipfFitRange quantifies the sensitivity of the
// Figure 7 interest slope to rank-range truncation (A4): fitting only the
// top decade of ranks versus all ranks.
func BenchmarkAblationZipfFitRange(b *testing.B) {
	f := getFixture(b)
	byClient := f.tr.ByClient()
	counts := make([]int, 0, len(byClient))
	for _, idxs := range byClient {
		counts = append(counts, len(idxs))
	}
	full, err := dist.FitZipfCounts(counts)
	if err != nil {
		b.Fatal(err)
	}
	freq := stats.RankFrequencies(counts)
	b.ResetTimer()
	var top dist.ZipfFit
	for i := 0; i < b.N; i++ {
		n := len(freq) / 10
		if n < 10 {
			n = len(freq)
		}
		top, err = dist.FitZipfFrequencies(freq[:n])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(full.Alpha, "alpha_all_ranks")
	b.ReportMetric(top.Alpha, "alpha_top_decade")
}
