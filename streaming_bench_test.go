// Streaming-pipeline benchmarks: sequential versus sharded generation
// and the streamed serving pass. `make bench` runs these and renders
// the results as BENCH_streaming.json (ns/op, bytes/op), the repo's
// perf trajectory for the event-stream core.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gismo"
	"repro/internal/sessions"
	"repro/internal/simulate"
	"repro/internal/wmslog"
	"repro/internal/workload"

	"math/rand"
)

// benchStreamModel is a dense mid-size fixture: a small population
// (~7k clients, so population setup does not drown the measurement)
// under a paper-density arrival stream (~100k sessions over 3 days), so
// the timed work is dominated by what sharding parallelizes — session
// expansion and the ordered merge.
func benchStreamModel(b *testing.B) gismo.Model {
	b.Helper()
	m, err := gismo.Scaled(100, 3)
	if err != nil {
		b.Fatal(err)
	}
	m.BaseArrivalRate *= 60
	return m
}

func benchGenerate(b *testing.B, shards int) {
	m := benchStreamModel(b)
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		ws, err := gismo.NewStream(m, benchSeed, shards)
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for {
			_, ok := ws.Next()
			if !ok {
				break
			}
			events++
		}
		ws.Close()
	}
	b.ReportMetric(float64(events), "events")
}

func BenchmarkStreamingGenerateSequential(b *testing.B) { benchGenerate(b, 1) }
func BenchmarkStreamingGenerateShards2(b *testing.B)    { benchGenerate(b, 2) }
func BenchmarkStreamingGenerateShards4(b *testing.B)    { benchGenerate(b, 4) }
func BenchmarkStreamingGenerateShards8(b *testing.B)    { benchGenerate(b, 8) }

// BenchmarkStreamingGenerateMaterialized is the legacy shape: drain the
// stream into a request slice (what Generate does), for the memory
// contrast with the pure streaming pass above.
func BenchmarkStreamingGenerateMaterialized(b *testing.B) {
	m := benchStreamModel(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gismo.Generate(m, rand.New(rand.NewSource(benchSeed))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingServe times the full streamed pipeline: 8-shard
// generation into the sequential streaming simulator with a counting
// entry sink, so the whole entry/reorder path stays hot.
func BenchmarkStreamingServe(b *testing.B) {
	m := benchStreamModel(b)
	cfg := simulate.DefaultConfig()
	sinks := simulate.StreamSinks{Entry: func(e *wmslog.Entry) error { return nil }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws, err := gismo.NewStream(m, benchSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
		res, err := simulate.RunStream(ws, ws.Population(), m.Horizon, cfg, benchSeed, sinks)
		ws.Close()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Transfers), "transfers")
		}
	}
}

// benchServeSharded times the parallel serve path at a fixed lane
// count over the same fixture as BenchmarkStreamingServe — the
// ISSUE 4 acceptance benchmark.
func benchServeSharded(b *testing.B, lanes int) {
	m := benchStreamModel(b)
	cfg := simulate.DefaultConfig()
	sinks := simulate.StreamSinks{Entry: func(e *wmslog.Entry) error { return nil }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws, err := gismo.NewStream(m, benchSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
		res, err := simulate.RunStreamSharded(ws, ws.Population(), m.Horizon, cfg, benchSeed, lanes, sinks)
		ws.Close()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Transfers), "transfers")
		}
	}
}

func BenchmarkStreamingServeSharded1(b *testing.B) { benchServeSharded(b, 1) }
func BenchmarkStreamingServeSharded4(b *testing.B) { benchServeSharded(b, 4) }
func BenchmarkStreamingServeSharded8(b *testing.B) { benchServeSharded(b, 8) }

// benchRunStreamed times the whole pipeline end to end —
// core.RunStreamed: sharded generation fused into the sharded serve
// dispatcher (one serve lane per generator shard) plus the online
// measurement layer — over the same fixture as the component benches.
// This is the number the generate-front-half work moves: generation,
// merge, dispatch, serve and measurement all overlap.
func benchRunStreamed(b *testing.B, shards int) {
	cfg := core.Config{
		Model:          benchStreamModel(b),
		Server:         simulate.DefaultConfig(),
		SessionTimeout: sessions.DefaultTimeout,
		Seed:           benchSeed,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.RunStreamed(cfg, shards)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Served.Transfers), "transfers")
		}
	}
}

func BenchmarkRunStreamedSequential(b *testing.B) { benchRunStreamed(b, 1) }
func BenchmarkRunStreamedShards4(b *testing.B)    { benchRunStreamed(b, 4) }
func BenchmarkRunStreamedShards8(b *testing.B)    { benchRunStreamed(b, 8) }

// benchEntry is a representative serve-path log entry for the encoder
// benchmarks.
func benchEntry() *wmslog.Entry {
	return &wmslog.Entry{
		Timestamp:    wmslog.TraceEpoch.Add(987654 * time.Second),
		ClientIP:     "200.131.17.42",
		PlayerID:     "player-000421377",
		ClientOS:     "Windows 98",
		ClientCPU:    "Pentium III",
		URIStem:      "/live/feed1",
		Duration:     1742,
		Bytes:        23953750,
		AvgBandwidth: 110000,
		PacketsLost:  3,
		ServerCPU:    4.37,
		Referer:      "http://show.example.br/aovivo",
		Status:       200,
		ASNumber:     1916,
		Country:      "BR",
	}
}

// BenchmarkStreamingEncodeEntry measures the zero-alloc line encoder
// the whole log path rides on (wmslog.AppendEntry).
func BenchmarkStreamingEncodeEntry(b *testing.B) {
	e := benchEntry()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = wmslog.AppendEntry(buf[:0], e)
	}
	if len(buf) == 0 {
		b.Fatal("empty encoding")
	}
}

// BenchmarkStreamingParseEntry measures the ParseAppend fast path over
// the canonical line AppendEntry emits.
func BenchmarkStreamingParseEntry(b *testing.B) {
	line := wmslog.AppendEntry(nil, benchEntry())
	var e wmslog.Entry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := wmslog.ParseAppend(&e, line); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLog caches the rendered log fixture for the codec benchmarks:
// the bench model's full serve-path log (~110k entries) in canonical
// text and framed binary form, built once per process. Only the
// pointer-free byte renderings are kept — a cached entry slice would
// sit in the live set and be rescanned by every GC cycle the
// benchmarks' own churn triggers, charging fixture bookkeeping to the
// parser under test.
var benchLog struct {
	once    sync.Once
	err     error
	entries int
	text    []byte
	binary  []byte
}

func benchLogFixture(b *testing.B) (text, bin []byte, entries int) {
	b.Helper()
	benchLog.once.Do(func() {
		benchLog.err = buildBenchLog()
	})
	if benchLog.err != nil {
		b.Fatal(benchLog.err)
	}
	return benchLog.text, benchLog.binary, benchLog.entries
}

func buildBenchLog() error {
	m, err := gismo.Scaled(100, 3)
	if err != nil {
		return err
	}
	m.BaseArrivalRate *= 60
	ws, err := gismo.NewStream(m, benchSeed, 8)
	if err != nil {
		return err
	}
	defer ws.Close()
	var text, bin bytes.Buffer
	tw := wmslog.NewWriter(&text)
	bw := wmslog.NewBinaryWriter(&bin)
	n := 0
	_, err = simulate.RunStream(ws, ws.Population(), m.Horizon, simulate.DefaultConfig(), benchSeed, simulate.StreamSinks{
		Entry: func(e *wmslog.Entry) error {
			n++
			if err := tw.Write(e); err != nil {
				return err
			}
			return bw.Write(e)
		},
	})
	if err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	benchLog.entries = n
	benchLog.text = text.Bytes()
	benchLog.binary = bin.Bytes()
	return nil
}

// benchParseLog drains one rendering of the fixture log through the
// auto-detecting Parser and checks the entry count.
func benchParseLog(b *testing.B, data []byte, want int) {
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := wmslog.NewParser(bytes.NewReader(data))
		got := 0
		for {
			_, err := p.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			got++
		}
		if got != want {
			b.Fatalf("parsed %d entries, want %d", got, want)
		}
	}
}

// BenchmarkStreamingParseTextLog re-parses the full canonical text log
// — the harvest-analysis baseline the binary fast path is gated
// against.
func BenchmarkStreamingParseTextLog(b *testing.B) {
	text, _, entries := benchLogFixture(b)
	benchParseLog(b, text, entries)
}

// BenchmarkStreamingParseBinaryLog re-parses the same log in the
// framed binary format (same Parser, detected by magic bytes).
func BenchmarkStreamingParseBinaryLog(b *testing.B) {
	_, bin, entries := benchLogFixture(b)
	benchParseLog(b, bin, entries)
}

// BenchmarkStreamingEncodeBinaryLog frames every fixture entry through
// a BinaryWriter (dictionary coding included) — the serve-path cost of
// -log-format binary.
func BenchmarkStreamingEncodeBinaryLog(b *testing.B) {
	_, bin, n := benchLogFixture(b)
	entries, _, err := wmslog.ReadAll(bytes.NewReader(bin), false)
	if err != nil {
		b.Fatal(err)
	}
	if len(entries) != n {
		b.Fatalf("fixture decode: %d entries, want %d", len(entries), n)
	}
	b.SetBytes(int64(len(bin)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw := wmslog.NewBinaryWriter(io.Discard)
		for _, e := range entries {
			if err := bw.Write(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamingBenchFixture keeps the bench fixture honest: the stream
// must be non-trivial and shard-invariant at bench scale.
func TestStreamingBenchFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("bench fixture validation")
	}
	m, err := gismo.Scaled(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.BaseArrivalRate *= 60
	counts := map[int]int{}
	for _, shards := range []int{1, 4} {
		ws, err := gismo.NewStream(m, benchSeed, shards)
		if err != nil {
			t.Fatal(err)
		}
		counts[shards] = len(workload.Drain(ws, 0))
		ws.Close()
	}
	if counts[1] < 10_000 {
		t.Errorf("bench fixture too small: %d events", counts[1])
	}
	if counts[1] != counts[4] {
		t.Errorf("bench fixture not shard-invariant: %v", counts)
	}
	fmt.Println("bench fixture events:", counts[1])
}
