// Streaming-pipeline benchmarks: sequential versus sharded generation
// and the streamed serving pass. `make bench` runs these and renders
// the results as BENCH_streaming.json (ns/op, bytes/op), the repo's
// perf trajectory for the event-stream core.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gismo"
	"repro/internal/simulate"
	"repro/internal/wmslog"
	"repro/internal/workload"

	"math/rand"
)

// benchStreamModel is a dense mid-size fixture: a small population
// (~7k clients, so population setup does not drown the measurement)
// under a paper-density arrival stream (~100k sessions over 3 days), so
// the timed work is dominated by what sharding parallelizes — session
// expansion and the ordered merge.
func benchStreamModel(b *testing.B) gismo.Model {
	b.Helper()
	m, err := gismo.Scaled(100, 3)
	if err != nil {
		b.Fatal(err)
	}
	m.BaseArrivalRate *= 60
	return m
}

func benchGenerate(b *testing.B, shards int) {
	m := benchStreamModel(b)
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		ws, err := gismo.NewStream(m, benchSeed, shards)
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for {
			_, ok := ws.Next()
			if !ok {
				break
			}
			events++
		}
		ws.Close()
	}
	b.ReportMetric(float64(events), "events")
}

func BenchmarkStreamingGenerateSequential(b *testing.B) { benchGenerate(b, 1) }
func BenchmarkStreamingGenerateShards2(b *testing.B)    { benchGenerate(b, 2) }
func BenchmarkStreamingGenerateShards4(b *testing.B)    { benchGenerate(b, 4) }
func BenchmarkStreamingGenerateShards8(b *testing.B)    { benchGenerate(b, 8) }

// BenchmarkStreamingGenerateMaterialized is the legacy shape: drain the
// stream into a request slice (what Generate does), for the memory
// contrast with the pure streaming pass above.
func BenchmarkStreamingGenerateMaterialized(b *testing.B) {
	m := benchStreamModel(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gismo.Generate(m, rand.New(rand.NewSource(benchSeed))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingServe times the full streamed pipeline: 8-shard
// generation into the sequential streaming simulator with a counting
// entry sink, so the whole entry/reorder path stays hot.
func BenchmarkStreamingServe(b *testing.B) {
	m := benchStreamModel(b)
	cfg := simulate.DefaultConfig()
	sinks := simulate.StreamSinks{Entry: func(e *wmslog.Entry) error { return nil }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws, err := gismo.NewStream(m, benchSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
		res, err := simulate.RunStream(ws, ws.Population(), m.Horizon, cfg, benchSeed, sinks)
		ws.Close()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Transfers), "transfers")
		}
	}
}

// benchServeSharded times the parallel serve path at a fixed lane
// count over the same fixture as BenchmarkStreamingServe — the
// ISSUE 4 acceptance benchmark.
func benchServeSharded(b *testing.B, lanes int) {
	m := benchStreamModel(b)
	cfg := simulate.DefaultConfig()
	sinks := simulate.StreamSinks{Entry: func(e *wmslog.Entry) error { return nil }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws, err := gismo.NewStream(m, benchSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
		res, err := simulate.RunStreamSharded(ws, ws.Population(), m.Horizon, cfg, benchSeed, lanes, sinks)
		ws.Close()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Transfers), "transfers")
		}
	}
}

func BenchmarkStreamingServeSharded1(b *testing.B) { benchServeSharded(b, 1) }
func BenchmarkStreamingServeSharded4(b *testing.B) { benchServeSharded(b, 4) }
func BenchmarkStreamingServeSharded8(b *testing.B) { benchServeSharded(b, 8) }

// benchEntry is a representative serve-path log entry for the encoder
// benchmarks.
func benchEntry() *wmslog.Entry {
	return &wmslog.Entry{
		Timestamp:    wmslog.TraceEpoch.Add(987654 * time.Second),
		ClientIP:     "200.131.17.42",
		PlayerID:     "player-000421377",
		ClientOS:     "Windows 98",
		ClientCPU:    "Pentium III",
		URIStem:      "/live/feed1",
		Duration:     1742,
		Bytes:        23953750,
		AvgBandwidth: 110000,
		PacketsLost:  3,
		ServerCPU:    4.37,
		Referer:      "http://show.example.br/aovivo",
		Status:       200,
		ASNumber:     1916,
		Country:      "BR",
	}
}

// BenchmarkStreamingEncodeEntry measures the zero-alloc line encoder
// the whole log path rides on (wmslog.AppendEntry).
func BenchmarkStreamingEncodeEntry(b *testing.B) {
	e := benchEntry()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = wmslog.AppendEntry(buf[:0], e)
	}
	if len(buf) == 0 {
		b.Fatal("empty encoding")
	}
}

// BenchmarkStreamingParseEntry measures the ParseAppend fast path over
// the canonical line AppendEntry emits.
func BenchmarkStreamingParseEntry(b *testing.B) {
	line := wmslog.AppendEntry(nil, benchEntry())
	var e wmslog.Entry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := wmslog.ParseAppend(&e, line); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamingBenchFixture keeps the bench fixture honest: the stream
// must be non-trivial and shard-invariant at bench scale.
func TestStreamingBenchFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("bench fixture validation")
	}
	m, err := gismo.Scaled(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.BaseArrivalRate *= 60
	counts := map[int]int{}
	for _, shards := range []int{1, 4} {
		ws, err := gismo.NewStream(m, benchSeed, shards)
		if err != nil {
			t.Fatal(err)
		}
		counts[shards] = len(workload.Drain(ws, 0))
		ws.Close()
	}
	if counts[1] < 10_000 {
		t.Errorf("bench fixture too small: %d events", counts[1])
	}
	if counts[1] != counts[4] {
		t.Errorf("bench fixture not shard-invariant: %v", counts)
	}
	fmt.Println("bench fixture events:", counts[1])
}
